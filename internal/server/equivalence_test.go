package server

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"pbppm/internal/core"
	"pbppm/internal/popularity"
	"pbppm/internal/session"
	"pbppm/internal/sim"
)

// TestLiveScorerMatchesOfflineSimulator is the live≡offline acceptance
// test: the same trace replayed (a) through internal/sim and (b) over
// real HTTP through the server's hint-lifecycle scorer with
// cooperating clients must produce identical §2.3 accounting — both
// paths feed the same quality.Scorer implementation, and this test
// proves the event streams they feed it are equivalent.
func TestLiveScorerMatchesOfflineSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)

	// A small site: 40 documents, a few over the 30 KB hint threshold
	// so size filtering is exercised on both paths.
	const nURLs = 40
	store := MapStore{}
	sizes := make(map[string]int64, nURLs)
	urlOf := func(i int) string { return fmt.Sprintf("/p%02d", i) }
	for i := 0; i < nURLs; i++ {
		size := int64(500 + (i*137)%4000)
		if i%13 == 5 {
			size = 40 * 1024 // never hinted, still demand-servable
		}
		store[urlOf(i)] = Document{URL: urlOf(i), Body: make([]byte, size)}
		sizes[urlOf(i)] = size
	}

	// Markov-ish navigation: from page i, go to one of three fixed
	// successors, so the trained model has real predictive power.
	next := func(i int) int {
		switch rng.Intn(3) {
		case 0:
			return (i*7 + 1) % nURLs
		case 1:
			return (i*7 + 2) % nURLs
		default:
			return (i + 11) % nURLs
		}
	}
	makeSession := func(client string, start time.Time, length int) session.Session {
		s := session.Session{Client: client}
		cur := rng.Intn(nURLs)
		at := start
		for v := 0; v < length; v++ {
			s.Views = append(s.Views, session.PageView{
				URL: urlOf(cur), Time: at, Bytes: sizes[urlOf(cur)],
			})
			at = at.Add(time.Duration(3+rng.Intn(20)) * time.Second)
			cur = next(cur)
		}
		return s
	}

	var train []session.Session
	for i := 0; i < 60; i++ {
		train = append(train, makeSession(fmt.Sprintf("t%d", i), base, 6+rng.Intn(5)))
	}
	// Test window: 8 clients, 2 sessions each; a client's sessions sit
	// 2 h apart (> the 30-minute idle rule, so the live server splits
	// contexts exactly where the simulator's per-session contexts end),
	// while different clients interleave within each wave.
	var test []session.Session
	for c := 0; c < 8; c++ {
		client := fmt.Sprintf("client%d", c)
		for k := 0; k < 2; k++ {
			start := base.Add(time.Duration(k)*2*time.Hour + time.Duration(c*7)*time.Second)
			test = append(test, makeSession(client, start, 5+rng.Intn(8)))
		}
	}

	// One trained model serves both replays (prediction is read-only).
	rank := popularity.NewRanking()
	for _, s := range train {
		for _, u := range s.URLs() {
			rank.Observe(u, 1)
		}
	}
	model := core.New(rank, core.Config{})
	sim.Train(model, train)

	// Offline: the simulator's accounting.
	offline := sim.Run(test, sim.Options{
		Predictor:        model,
		MaxPrefetchBytes: 30 * 1024,
		Sizes:            sizes,
	})

	// Live: the same events as HTTP traffic. The fake clock tracks the
	// trace timeline so the server's idle rule sees trace time.
	var clockNanos atomic.Int64
	clockNanos.Store(base.UnixNano())
	srv := New(store, Config{
		Predictor:    model,
		MaxHints:     1024, // the simulator does not cap hints per response
		MaxHintBytes: 30 * 1024,
		Clock:        func() time.Time { return time.Unix(0, clockNanos.Load()) },
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	clients := make(map[string]*Client)
	for _, s := range test {
		if clients[s.Client] == nil {
			c, err := NewClient(ClientConfig{
				ID: s.Client, BaseURL: ts.URL, SynchronousPrefetch: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			clients[s.Client] = c
		}
	}

	// Replay in the simulator's exact global order.
	type event struct {
		t      time.Time
		client string
		si, vi int
	}
	var events []event
	for si, s := range test {
		for vi, v := range s.Views {
			events = append(events, event{t: v.Time, client: s.Client, si: si, vi: vi})
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if !events[i].t.Equal(events[j].t) {
			return events[i].t.Before(events[j].t)
		}
		if events[i].client != events[j].client {
			return events[i].client < events[j].client
		}
		return events[i].si < events[j].si ||
			(events[i].si == events[j].si && events[i].vi < events[j].vi)
	})
	for _, ev := range events {
		clockNanos.Store(ev.t.UnixNano())
		if _, err := clients[ev.client].Get(test[ev.si].Views[ev.vi].URL); err != nil {
			t.Fatal(err)
		}
	}
	// Deliver the trailing hit reports.
	for _, c := range clients {
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	live := srv.QualityTotal()
	if live.Requests != offline.Requests ||
		live.CacheHits != offline.CacheHits ||
		live.PrefetchHits != offline.PrefetchHits ||
		live.PrefetchedDocs != offline.PrefetchedDocs ||
		live.TransferredBytes != offline.TransferredBytes ||
		live.UsefulBytes != offline.UsefulBytes ||
		live.PrefetchedBytes != offline.PrefetchedBytes {
		t.Fatalf("live scorer diverged from simulator:\nlive    = %+v\noffline = {Requests:%d CacheHits:%d PrefetchHits:%d PrefetchedDocs:%d TransferredBytes:%d UsefulBytes:%d PrefetchedBytes:%d}",
			live, offline.Requests, offline.CacheHits, offline.PrefetchHits,
			offline.PrefetchedDocs, offline.TransferredBytes, offline.UsefulBytes, offline.PrefetchedBytes)
	}

	// The replay must have exercised the interesting paths, or the
	// equivalence is vacuous.
	if live.PrefetchHits == 0 || live.PrefetchedDocs == 0 || live.CacheHits == 0 {
		t.Fatalf("degenerate replay: %+v", live)
	}

	// Derived ratios match to the bit, since both delegate to
	// metrics.Result.
	if live.Precision() != offline.PrefetchPrecision() ||
		live.HitRatio() != offline.HitRatio() ||
		live.TrafficIncrease() != offline.TrafficIncrease() {
		t.Fatalf("ratio mismatch: live (%v, %v, %v) vs offline (%v, %v, %v)",
			live.Precision(), live.HitRatio(), live.TrafficIncrease(),
			offline.PrefetchPrecision(), offline.HitRatio(), offline.TrafficIncrease())
	}
}
