package server

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pbppm/internal/markov"
)

// The X-Prefetch header is a comma-separated hint list in which ';'
// separates a URL from its parameters: "url;p=0.62, url2;p=0.31".
// URLs are percent-escaped so the two delimiter bytes (and '%' itself,
// spaces, controls, and non-ASCII bytes) round-trip through the header
// unharmed.

const upperhex = "0123456789ABCDEF"

// hintEscapeNeeded reports whether byte c would corrupt the hint-list
// syntax or the header encoding if emitted raw.
func hintEscapeNeeded(c byte) bool {
	return c <= ' ' || c >= 0x7f || c == '%' || c == ',' || c == ';'
}

// escapeHintURL percent-escapes the bytes of u that collide with the
// hint-list syntax.
func escapeHintURL(u string) string {
	needs := false
	for i := 0; i < len(u); i++ {
		if hintEscapeNeeded(u[i]) {
			needs = true
			break
		}
	}
	if !needs {
		return u
	}
	var b strings.Builder
	b.Grow(len(u) + 8)
	for i := 0; i < len(u); i++ {
		c := u[i]
		if hintEscapeNeeded(c) {
			b.WriteByte('%')
			b.WriteByte(upperhex[c>>4])
			b.WriteByte(upperhex[c&0xf])
		} else {
			b.WriteByte(c)
		}
	}
	return b.String()
}

// unescapeHintURL inverts escapeHintURL. Malformed percent triples are
// kept literally so legacy unescaped headers still parse.
func unescapeHintURL(u string) string {
	if !strings.Contains(u, "%") {
		return u
	}
	var b strings.Builder
	b.Grow(len(u))
	for i := 0; i < len(u); i++ {
		c := u[i]
		if c == '%' && i+2 < len(u) {
			if hi, ok1 := unhex(u[i+1]); ok1 {
				if lo, ok2 := unhex(u[i+2]); ok2 {
					b.WriteByte(hi<<4 | lo)
					i += 2
					continue
				}
			}
		}
		b.WriteByte(c)
	}
	return b.String()
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// FormatHints renders the X-Prefetch header value,
// "url;p=0.62, url2;p=0.31", percent-escaping each URL.
func FormatHints(hints []markov.Prediction) string {
	parts := make([]string, len(hints))
	for i, h := range hints {
		parts[i] = fmt.Sprintf("%s;p=%.3f", escapeHintURL(h.URL), h.Probability)
	}
	return strings.Join(parts, ", ")
}

// ParseHints inverts FormatHints; malformed elements are skipped.
func ParseHints(header string) []markov.Prediction {
	if header == "" {
		return nil
	}
	var out []markov.Prediction
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		url, rest, found := strings.Cut(part, ";")
		p := markov.Prediction{URL: unescapeHintURL(strings.TrimSpace(url)), Probability: 0}
		if found {
			if v, ok := strings.CutPrefix(strings.TrimSpace(rest), "p="); ok {
				if f, err := strconv.ParseFloat(v, 64); err == nil {
					p.Probability = f
				}
			}
		}
		if p.URL != "" {
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Probability > out[j].Probability })
	return out
}
