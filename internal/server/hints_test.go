package server

import (
	"strings"
	"testing"

	"pbppm/internal/markov"
)

func TestHintRoundTripSpecialCharacters(t *testing.T) {
	urls := []string{
		"/plain",
		"/a,b",                   // comma collides with the hint separator
		"/a;b",                   // semicolon collides with the parameter separator
		"/a%2Cb",                 // pre-escaped text must survive double-transport
		"/search?q=a,b;c d",      // query with all three hazards
		"/100%",                  // trailing bare percent
		"/sp ace",                // space
	}
	hints := make([]markov.Prediction, len(urls))
	for i, u := range urls {
		hints[i] = markov.Prediction{URL: u, Probability: 0.9 - float64(i)*0.1}
	}
	header := FormatHints(hints)
	got := ParseHints(header)
	if len(got) != len(urls) {
		t.Fatalf("round trip lost hints: %d -> %d (%q)", len(urls), len(got), header)
	}
	for i, u := range urls {
		if got[i].URL != u {
			t.Errorf("hint %d round-tripped %q -> %q (header %q)", i, u, got[i].URL, header)
		}
	}
}

func TestUnescapeHintURLTolerance(t *testing.T) {
	// Legacy unescaped headers and malformed triples must pass through.
	for in, want := range map[string]string{
		"/plain":  "/plain",
		"/a%ZZb":  "/a%ZZb", // bad hex kept literally
		"/a%2":    "/a%2",   // truncated triple
		"/a%":     "/a%",
		"/a%2Cb":  "/a,b",
		"%3B%25":  ";%",
	} {
		if got := unescapeHintURL(in); got != want {
			t.Errorf("unescapeHintURL(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapedHintHeaderIsCleanASCII(t *testing.T) {
	header := FormatHints([]markov.Prediction{{URL: "/ünïcode,path;x", Probability: 0.5}})
	for i := 0; i < len(header); i++ {
		if header[i] < ' ' || header[i] >= 0x7f {
			t.Fatalf("header byte %d (%q) not printable ASCII: %q", i, header[i], header)
		}
	}
	if strings.Count(header, ";") != 1 || strings.Count(header, ",") != 0 {
		t.Errorf("URL delimiters leaked into header: %q", header)
	}
}

// FuzzHintHeaderRoundTrip asserts that any URL survives the
// format/parse cycle byte-for-byte.
func FuzzHintHeaderRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"/home", "/a,b;c", "a b", "%", "%%2C", "/q?x=1,2;3", "ü", "\x00\x01,", "",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, url string) {
		if e := escapeHintURL(url); unescapeHintURL(e) != url {
			t.Fatalf("escape/unescape: %q -> %q -> %q", url, e, unescapeHintURL(e))
		}
		hints := []markov.Prediction{{URL: url, Probability: 0.5}}
		got := ParseHints(FormatHints(hints))
		if url == "" {
			if len(got) != 0 {
				t.Fatalf("empty URL parsed to %+v", got)
			}
			return
		}
		if len(got) != 1 || got[0].URL != url {
			t.Fatalf("header round trip: %q -> %q -> %+v", url, FormatHints(hints), got)
		}
	})
}
