package server

import (
	"net/http/httptest"
	"strings"
	"testing"

	"pbppm/internal/quality"
)

// get serves one GET through the server with an explicit peer address
// and optional identity header, the way a router hop or a direct
// client would look on the wire.
func get(t *testing.T, srv *Server, url, remoteAddr, clientHeader string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	req.RemoteAddr = remoteAddr
	if clientHeader != "" {
		req.Header.Set(HeaderClientID, clientHeader)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

// Regression for the spoofable-identity bug: with TrustedPeers set, an
// identity header from an unlisted peer must be ignored (it would let
// any client poison another client's session context), while the
// trusted router hop keeps asserting distinct per-client identities
// from one address.
func TestTrustedPeersGateIdentityHeader(t *testing.T) {
	srv := New(testStore(), Config{TrustedPeers: []string{"10.0.0.9"}})

	// An untrusted peer forging X-Client-ID falls back to its host.
	get(t, srv, "/home", "203.0.113.7:5555", "victim")
	if ctx := srv.contextURLs("victim"); ctx != nil {
		t.Errorf("forged identity opened a session: %v", ctx)
	}
	if ctx := srv.contextURLs("203.0.113.7"); strings.Join(ctx, " ") != "/home" {
		t.Errorf("untrusted peer context = %v, want [/home]", ctx)
	}

	// The trusted router stamps distinct identities on forwarded hops;
	// all arrive from the router's address yet keep separate contexts.
	get(t, srv, "/news", "10.0.0.9:40001", "alice")
	get(t, srv, "/sports", "10.0.0.9:40002", "bob")
	if ctx := srv.contextURLs("alice"); strings.Join(ctx, " ") != "/news" {
		t.Errorf("alice context = %v", ctx)
	}
	if ctx := srv.contextURLs("bob"); strings.Join(ctx, " ") != "/sports" {
		t.Errorf("bob context = %v", ctx)
	}
	// Requests from the router without a header collapse to the router
	// host — the failure mode the trust gate exists to make visible
	// rather than silent: the router must stamp every hop.
	get(t, srv, "/home", "10.0.0.9:40003", "")
	if ctx := srv.contextURLs("10.0.0.9"); strings.Join(ctx, " ") != "/home" {
		t.Errorf("router-host fallback context = %v", ctx)
	}
}

// Without TrustedPeers the legacy contract holds: cooperating clients
// talking straight to the server assert their own identity.
func TestEmptyTrustedPeersHonorsHeaderFromAnyPeer(t *testing.T) {
	srv := New(testStore(), Config{})
	get(t, srv, "/home", "203.0.113.7:5555", "carol")
	if ctx := srv.contextURLs("carol"); strings.Join(ctx, " ") != "/home" {
		t.Errorf("direct-client context = %v", ctx)
	}
}

func TestIdentityPolicyTrustsPeer(t *testing.T) {
	ip := NewIdentityPolicy([]string{"10.0.0.9", "::1"})
	cases := map[string]bool{
		"10.0.0.9:123": true,
		"[::1]:80":     true,
		"10.0.0.8:123": false,
		"10.0.0.9":     true, // portless RemoteAddr still matches
		"evil":         false,
	}
	for addr, want := range cases {
		if got := ip.trustsPeer(addr); got != want {
			t.Errorf("trustsPeer(%q) = %v, want %v", addr, got, want)
		}
	}
	if !NewIdentityPolicy(nil).trustsPeer("anything:1") {
		t.Error("empty policy must trust every peer")
	}
}

// Regression for the invisible-drop bug: a prefetch-hit report that
// matches no outstanding hint record must be counted in
// pbppm_hint_reports_unmatched_total (it still scores, so the live
// quality metrics do not lose the hit).
func TestUnmatchedHitReportsAreCounted(t *testing.T) {
	srv := New(testStore(), Config{Predictor: trainedPB()})

	// Hint /news to alice, then report a hit for it: matched.
	get(t, srv, "/home", "1.2.3.4:1", "alice")
	req := httptest.NewRequest("GET", "/news/today", nil)
	req.RemoteAddr = "1.2.3.4:1"
	req.Header.Set(HeaderClientID, "alice")
	req.Header.Set(HeaderPrefetchReport, FormatReport([]ReportEntry{
		{URL: "/news", Outcome: quality.PrefetchHit},
	}))
	srv.ServeHTTP(httptest.NewRecorder(), req)
	if n := srv.Stats().HintReportsUnmatched; n != 0 {
		t.Fatalf("matched report counted as unmatched: %d", n)
	}

	// A report for a URL this server never hinted: unmatched, counted,
	// still scored as a prefetch hit.
	before := srv.QualityTotal().PrefetchHits
	req = httptest.NewRequest("GET", "/", nil)
	req.RemoteAddr = "1.2.3.4:1"
	req.Header.Set(HeaderClientID, "alice")
	req.Header.Set(HeaderPrefetchReportOnly, "1")
	req.Header.Set(HeaderPrefetchReport, FormatReport([]ReportEntry{
		{URL: "/sports", Outcome: quality.PrefetchHit},
	}))
	srv.ServeHTTP(httptest.NewRecorder(), req)
	if n := srv.Stats().HintReportsUnmatched; n != 1 {
		t.Errorf("HintReportsUnmatched = %d, want 1", n)
	}
	if after := srv.QualityTotal().PrefetchHits; after != before+1 {
		t.Errorf("unmatched report not scored: prefetch hits %d -> %d", before, after)
	}
}
