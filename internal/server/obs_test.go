package server

import (
	"strings"
	"testing"

	"pbppm/internal/obs"
)

// TestMetricsExposition serves traffic through an instrumented server
// and checks the /metrics exposition end to end: the text parses, and
// the request, latency, and hint families carry the observed values.
func TestMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	srv := New(testStore(), Config{Predictor: trainedPB(), Obs: reg})

	doGet(srv, "/home", "c1", false)
	doGet(srv, "/news", "c1", false)
	doGet(srv, "/missing", "c1", false)
	doGet(srv, "/news/today", "c1", true) // hint-driven prefetch

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := sb.String()
	if err := obs.ValidateExposition(text); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, text)
	}
	for _, want := range []string{
		`pbppm_http_requests_total{kind="demand"} 2`,
		`pbppm_http_requests_total{kind="prefetch"} 1`,
		"pbppm_http_not_found_total 1",
		"pbppm_sessions_started_total 1",
		`pbppm_http_request_seconds_count{kind="demand"} 2`,
		`pbppm_http_request_seconds_count{kind="prefetch"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	// /home is trained toward /news: at least one hint was issued.
	if st := srv.Stats(); st.HintsIssued == 0 {
		t.Error("no hints issued for trained sequence")
	}
	if !strings.Contains(text, "pbppm_hints_issued_total") {
		t.Errorf("exposition missing hints counter\n%s", text)
	}
}

// TestHintHitCounters drives the full hint loop: a hint is issued, the
// client prefetches it (hint fetch), then the user navigates to it
// (hint hit) — the live precision counters of §4.
func TestHintHitCounters(t *testing.T) {
	srv := New(testStore(), Config{Predictor: trainedPB()})

	// /home hints /news with the trained model.
	rec := doGet(srv, "/home", "c1", false)
	if rec.Header().Get(HeaderPrefetch) == "" {
		t.Fatal("no hint issued for /home")
	}
	if !strings.Contains(rec.Header().Get(HeaderPrefetch), "/news") {
		t.Fatalf("hint = %q, want /news", rec.Header().Get(HeaderPrefetch))
	}

	// The cooperating client prefetches the hinted URL.
	doGet(srv, "/news", "c1", true)
	if st := srv.Stats(); st.HintFetches != 1 {
		t.Errorf("HintFetches = %d, want 1", st.HintFetches)
	}

	// The user then actually navigates there: a hint hit.
	doGet(srv, "/news", "c1", false)
	st := srv.Stats()
	if st.HintHits != 1 {
		t.Errorf("HintHits = %d, want 1", st.HintHits)
	}

	// A second demand click on the same URL must not double-count: the
	// hint was consumed.
	doGet(srv, "/news", "c1", false)
	if st := srv.Stats(); st.HintHits != 1 {
		t.Errorf("HintHits after repeat = %d, want 1", st.HintHits)
	}

	// Another client was never hinted: no hit.
	doGet(srv, "/news", "c2", false)
	if st := srv.Stats(); st.HintHits != 1 {
		t.Errorf("HintHits after other client = %d, want 1", st.HintHits)
	}
}

func TestHintMemoryBounded(t *testing.T) {
	ctx := &clientContext{}
	var recs []hintRecord
	for i := 0; i < 3*hintMemory; i++ {
		url := strings.Repeat("x", 1) + string(rune('a'+i%26)) + string(rune('0'+i/26))
		recs = append(recs, hintRecord{url: url, fetched: i%2 == 0})
	}
	dropped := ctx.recordHinted(recs, hintMemory)
	if len(ctx.hinted) > hintMemory {
		t.Errorf("hinted grew to %d, cap is %d", len(ctx.hinted), hintMemory)
	}
	if len(dropped) != len(recs)-hintMemory {
		t.Errorf("dropped %d records, want %d", len(dropped), len(recs)-hintMemory)
	}
	// The newest hints survive.
	if ctx.hintedIndex(recs[len(recs)-1].url) < 0 {
		t.Error("newest hint was evicted")
	}
	if ctx.hintedIndex(recs[0].url) >= 0 {
		t.Error("oldest hint survived past the cap")
	}
	// Dropped records keep their state so Wasted events can fire.
	if !dropped[0].fetched {
		t.Error("dropped record lost its fetched state")
	}
}

// TestTracerSamplesPredictPath verifies the predict-path tracer records
// stage timings through real ServeHTTP traffic when sampling every
// call, and stays silent when sampling is off.
func TestTracerSamplesPredictPath(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg, 1)
	srv := New(testStore(), Config{Predictor: trainedPB(), Obs: reg, Tracer: tr})

	doGet(srv, "/home", "c1", false)
	doGet(srv, "/news", "c1", false)

	recent := tr.Recent()
	if len(recent) != 2 {
		t.Fatalf("sampled %d traces, want 2", len(recent))
	}
	if recent[0].URL != "/news" || recent[0].Client != "c1" {
		t.Errorf("newest trace = %+v", recent[0])
	}

	tr.SetSampleEvery(0)
	doGet(srv, "/news/today", "c1", false)
	if got := len(tr.Recent()); got != 2 {
		t.Errorf("sampling off still recorded: %d traces", got)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `pbppm_predict_stage_seconds_count{stage="predict"} 2`) {
		t.Errorf("exposition missing predict-stage histogram:\n%s", sb.String())
	}
}
