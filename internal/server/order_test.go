package server

import (
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Regression for the session-order inversion: ExpireSessions used to
// deliver OnSessionEnd after releasing the shard lock, so a request
// racing the expiry could start a successor session, go idle, and have
// its end delivered before the predecessor's. The fix chains each
// client's end deliveries; this stress test (run under -race in CI)
// hammers expiry against per-client request streams whose sessions are
// tagged with a monotonically increasing URL index and asserts the
// maintainer-side view never sees a client's sessions out of order.
func TestSessionEndOrderPerClientUnderConcurrentExpiry(t *testing.T) {
	const (
		clients           = 8
		sessionsPerClient = 40
		idle              = time.Minute
	)

	store := MapStore{}
	for k := 0; k < sessionsPerClient; k++ {
		url := fmt.Sprintf("/p%d", k)
		store[url] = Document{URL: url, Body: make([]byte, 64)}
	}

	// The fake clock is a shared atomic: any goroutine advancing it
	// makes every open session idle, which is exactly the churn that
	// provokes the race.
	base := time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC)
	var nanos atomic.Int64
	clock := func() time.Time { return base.Add(time.Duration(nanos.Load())) }

	var mu sync.Mutex
	lastSeq := make(map[string]int)
	var violations []string
	srv := New(store, Config{
		Clock:       clock,
		SessionIdle: idle,
		OnSessionEnd: func(client string, urls []string, last time.Time) {
			// Each session holds exactly the URLs of one /p<k>; the last
			// one carries the session's sequence number.
			seq, err := strconv.Atoi(strings.TrimPrefix(urls[len(urls)-1], "/p"))
			if err != nil {
				return
			}
			mu.Lock()
			if prev, ok := lastSeq[client]; ok && seq < prev {
				violations = append(violations,
					fmt.Sprintf("client %s: session %d delivered after %d", client, seq, prev))
			}
			lastSeq[client] = seq
			mu.Unlock()
		},
	})

	// Expiry hammers concurrently with the request streams.
	stop := make(chan struct{})
	var expiryWG sync.WaitGroup
	expiryWG.Add(1)
	go func() {
		defer expiryWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				srv.ExpireSessions()
			}
		}
	}()

	var streams sync.WaitGroup
	for c := 0; c < clients; c++ {
		streams.Add(1)
		go func(c int) {
			defer streams.Done()
			id := fmt.Sprintf("client%d", c)
			for k := 0; k < sessionsPerClient; k++ {
				// Jump the shared clock past the idle window so the next
				// request rotates every client's open session.
				nanos.Add(int64(2 * idle))
				req := httptest.NewRequest("GET", fmt.Sprintf("/p%d", k), nil)
				req.RemoteAddr = "203.0.113.1:1"
				req.Header.Set(HeaderClientID, id)
				srv.ServeHTTP(httptest.NewRecorder(), req)
			}
		}(c)
	}

	streamsDone := make(chan struct{})
	go func() {
		streams.Wait()
		close(streamsDone)
	}()
	select {
	case <-streamsDone:
	case <-time.After(30 * time.Second):
		t.Fatal("stress test deadlocked")
	}
	close(stop)
	expiryWG.Wait()

	// Flush whatever is still open so every session is delivered.
	nanos.Add(int64(2 * idle))
	srv.ExpireSessions()

	mu.Lock()
	defer mu.Unlock()
	if len(violations) > 0 {
		t.Fatalf("per-client session order violated %d times; first: %s",
			len(violations), violations[0])
	}
	for c := 0; c < clients; c++ {
		id := fmt.Sprintf("client%d", c)
		if lastSeq[id] != sessionsPerClient-1 {
			t.Errorf("%s: last delivered session = %d, want %d", id, lastSeq[id], sessionsPerClient-1)
		}
	}
}
