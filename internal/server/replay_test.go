package server

import (
	"net/http/httptest"
	"sort"
	"testing"

	"pbppm/internal/cache"
	"pbppm/internal/core"
	"pbppm/internal/popularity"
	"pbppm/internal/session"
	"pbppm/internal/sim"
	"pbppm/internal/tracegen"
)

// TestReplayWorkloadOverHTTP is the end-to-end integration test: a
// synthetic workload is replayed through the real HTTP server and
// cooperating clients, and prefetching must lift the aggregate hit
// ratio well above the no-hint baseline — the paper's claim, exercised
// over an actual network stack instead of the simulator.
func TestReplayWorkloadOverHTTP(t *testing.T) {
	p := tracegen.NASA()
	p.Days = 3
	p.SessionsPerDay = 250
	p.Pages = 150
	p.Browsers = 60
	p.Crawlers = 0
	p.ProxyShare = 0

	site, err := tracegen.BuildSite(p)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tracegen.GenerateOn(site, p)
	if err != nil {
		t.Fatal(err)
	}
	sessions := session.Sessionize(tr, session.Config{})

	// Train PB-PPM on the first two days.
	cut := tr.Epoch.AddDate(0, 0, 2)
	var train, test []session.Session
	for _, s := range sessions {
		if s.Start().Before(cut) {
			train = append(train, s)
		} else {
			test = append(test, s)
		}
	}
	if len(test) < 50 {
		t.Fatalf("only %d test sessions", len(test))
	}
	rank := rankOf(train)
	model := core.New(rank, core.Config{RelProbCutoff: 0.01})
	sim.Train(model, train)

	store := MapStore{}
	for _, pg := range site.Pages {
		store[pg.URL] = Document{URL: pg.URL, Body: make([]byte, pg.Size)}
	}

	run := func(pred *core.Model) (hitRatio float64) {
		var cfg Config
		if pred != nil {
			cfg.Predictor = pred
		}
		srv := New(store, cfg)
		ts := httptest.NewServer(srv)
		defer ts.Close()

		clients := map[string]*Client{}
		var requests, hits int64
		// Replay sessions in start order; within a session clicks are
		// sequential, matching real browsing.
		ordered := append([]session.Session(nil), test...)
		sort.SliceStable(ordered, func(i, j int) bool {
			return ordered[i].Start().Before(ordered[j].Start())
		})
		for _, s := range ordered {
			cl := clients[s.Client]
			if cl == nil {
				var err error
				cl, err = NewClient(ClientConfig{
					ID:      s.Client,
					BaseURL: ts.URL,
					Policy:  cache.NewLRU(cache.DefaultBrowserCapacity),
				})
				if err != nil {
					t.Fatal(err)
				}
				clients[s.Client] = cl
			}
			for _, v := range s.Views {
				src, err := cl.Get(v.URL)
				if err != nil {
					t.Fatalf("GET %s: %v", v.URL, err)
				}
				requests++
				if src == "cache" || src == "prefetch" {
					hits++
				}
				cl.Wait() // deterministic: hints land before the next click
			}
		}
		return float64(hits) / float64(requests)
	}

	baseline := run(nil)
	prefetched := run(model)
	t.Logf("HTTP replay: baseline hit %.3f, PB-PPM hint hit %.3f", baseline, prefetched)
	if prefetched <= baseline+0.05 {
		t.Errorf("hint prefetching lifted hit ratio only %.3f -> %.3f",
			baseline, prefetched)
	}
}

func rankOf(sessions []session.Session) *popularity.Ranking {
	rank := popularity.NewRanking()
	for _, s := range sessions {
		for _, u := range s.URLs() {
			rank.Observe(u, 1)
		}
	}
	return rank
}
