package server

import (
	"strings"

	"pbppm/internal/quality"
)

// The hint protocol is one-directional: the server pushes hints, the
// client fetches them, and hits the client serves from its own cache
// never reach the server. X-Prefetch-Report closes that loop: a
// cooperating client batches its local hit outcomes and attaches them
// to its next request (or a report-only beacon), so the server can
// score its predictions against the client's actual next navigation —
// the data behind the pbppm_live_* gauges.
const (
	// HeaderPrefetchReport carries batched client-side hit outcomes:
	// "url;h=p, url2;h=c" — h=p for a hit served by a prefetched copy,
	// h=c for an ordinary cache hit. URLs are percent-escaped exactly
	// like X-Prefetch hints.
	HeaderPrefetchReport = "X-Prefetch-Report"
	// HeaderPrefetchReportOnly marks a request as a pure report beacon:
	// the server ingests the report and answers 204 No Content without
	// touching the content store or demand statistics.
	HeaderPrefetchReportOnly = "X-Prefetch-Report-Only"
)

// ReportEntry is one client-side hit outcome. Outcome is CacheHit or
// PrefetchHit; misses reach the server as ordinary demand requests and
// are never reported.
type ReportEntry struct {
	URL     string
	Outcome quality.Outcome
}

// FormatReport renders the X-Prefetch-Report header value.
func FormatReport(entries []ReportEntry) string {
	parts := make([]string, 0, len(entries))
	for _, e := range entries {
		tag := ";h=c"
		if e.Outcome == quality.PrefetchHit {
			tag = ";h=p"
		}
		parts = append(parts, escapeHintURL(e.URL)+tag)
	}
	return strings.Join(parts, ", ")
}

// ParseReport inverts FormatReport; malformed elements are skipped.
func ParseReport(header string) []ReportEntry {
	if header == "" {
		return nil
	}
	var out []ReportEntry
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		url, rest, found := strings.Cut(part, ";")
		if !found {
			continue
		}
		var outcome quality.Outcome
		switch strings.TrimSpace(rest) {
		case "h=p":
			outcome = quality.PrefetchHit
		case "h=c":
			outcome = quality.CacheHit
		default:
			continue
		}
		u := unescapeHintURL(strings.TrimSpace(url))
		if u == "" {
			continue
		}
		out = append(out, ReportEntry{URL: u, Outcome: outcome})
	}
	return out
}
