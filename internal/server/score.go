package server

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pbppm/internal/obs"
	"pbppm/internal/popularity"
	"pbppm/internal/quality"
)

// This file implements the server's live quality scoring: every hint
// moves through an explicit lifecycle (issued → fetched → hit or
// wasted), each transition is emitted as a structured HintEvent and a
// labelled counter, and the resulting demand/prefetch stream feeds a
// quality.Scorer per model — the same implementation internal/sim uses
// — so the paper's §2.3 precision, hit-ratio, and traffic-increase
// numbers are available as rolling-window gauges from live traffic.

// HintEventType names a hint-lifecycle transition.
type HintEventType int

const (
	// HintIssued: the hint was attached to a response.
	HintIssued HintEventType = iota
	// HintFetched: the cooperating client prefetched the hinted URL.
	HintFetched
	// HintHit: the client navigated to the hinted URL — the prediction
	// came true (whether or not the prefetched copy served it).
	HintHit
	// HintWasted: the hint was fetched but never hit before its session
	// closed — prefetched bytes that bought nothing.
	HintWasted

	numHintEvents = int(HintWasted) + 1
)

// String names the event for labels and logs.
func (t HintEventType) String() string {
	switch t {
	case HintIssued:
		return "issued"
	case HintFetched:
		return "fetched"
	case HintHit:
		return "hit"
	default:
		return "wasted"
	}
}

// HintEvent is one hint-lifecycle transition, delivered to
// Config.OnHintEvent and counted in pbppm_hint_events_total.
type HintEvent struct {
	Type   HintEventType
	Client string
	URL    string
	// Model names the prediction model that issued the hint.
	Model string
	// Grade is the hinted document's popularity grade at event time.
	Grade popularity.Grade
	// Probability is the predicted probability the hint carried.
	Probability float64
	// Age is the time since issuance (zero for HintIssued); for
	// HintHit it is the paper-relevant age-at-hit.
	Age time.Duration
}

// graderCell boxes the popularity grader interface behind an atomic
// pointer, like predictorCell does for the model.
type graderCell struct{ g popularity.Grader }

// modelScore is the live quality state for one prediction model: a
// windowed scorer plus per-grade fetched/hit counters for the
// popularity-resolved precision gauges.
type modelScore struct {
	name    string
	score   *quality.Scorer
	fetched [popularity.MaxGrade + 1]*obs.RollingCounter
	hits    [popularity.MaxGrade + 1]*obs.RollingCounter
}

func newModelScore(name string, w obs.Window) *modelScore {
	ms := &modelScore{name: name, score: quality.NewWindowedScorer(w)}
	for g := range ms.fetched {
		ms.fetched[g] = obs.NewRollingCounter(w)
		ms.hits[g] = obs.NewRollingCounter(w)
	}
	return ms
}

// liveScore owns all live-quality state: per-model scorers, the
// lifecycle event counters, and the rolling demand-latency histogram.
// The demand hot path touches only atomics (current-model load plus
// scorer adds); the mutex guards the model map, which changes only on
// model publishes.
type liveScore struct {
	reg     *obs.Registry
	win     obs.Window
	span    time.Duration // the "live" gauge span (Config.LiveWindow)
	onEvent func(HintEvent)

	grader  atomic.Pointer[graderCell]
	current atomic.Pointer[modelScore]

	mu     sync.Mutex
	models map[string]*modelScore

	events        [numHintEvents][popularity.MaxGrade + 1]*obs.Counter
	demandLatency *obs.RollingHistogram
}

func newLiveScore(reg *obs.Registry, win obs.Window, span time.Duration, onEvent func(HintEvent)) *liveScore {
	l := &liveScore{
		reg:           reg,
		win:           win,
		span:          span,
		onEvent:       onEvent,
		models:        make(map[string]*modelScore),
		demandLatency: obs.NewRollingHistogram(win, nil),
	}
	for t := 0; t < numHintEvents; t++ {
		for g := 0; g <= int(popularity.MaxGrade); g++ {
			l.events[t][g] = reg.Counter("pbppm_hint_events_total",
				"Hint-lifecycle transitions (issued, fetched, hit, wasted) by popularity grade.",
				obs.Label{Name: "event", Value: HintEventType(t).String()},
				obs.Label{Name: "grade", Value: strconv.Itoa(g)})
		}
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		q := q
		reg.GaugeFunc("pbppm_live_request_latency_seconds",
			"Rolling-window demand latency quantiles.",
			func() float64 { return l.demandLatency.Quantile(l.span, q).Seconds() },
			obs.Label{Name: "kind", Value: "demand"},
			obs.Label{Name: "q", Value: strconv.FormatFloat(q, 'g', -1, 64)})
	}
	// Traffic that arrives before the first model publish scores
	// against the explicit "none" baseline.
	l.setModel("none")
	return l
}

// setGrader publishes the popularity grader used to grade event URLs.
func (l *liveScore) setGrader(g popularity.Grader) {
	l.grader.Store(&graderCell{g: g})
}

// gradeOf grades a URL with the published grader, or grade 0.
func (l *liveScore) gradeOf(url string) popularity.Grade {
	if c := l.grader.Load(); c != nil && c.g != nil {
		return c.g.GradeOf(url)
	}
	return 0
}

// setModel switches the scoring target to the named model, creating
// its scorer and registering its live gauges on first sight. Hints
// already outstanding keep scoring against the model that issued them.
func (l *liveScore) setModel(name string) {
	l.mu.Lock()
	ms := l.models[name]
	if ms == nil {
		ms = newModelScore(name, l.win)
		l.models[name] = ms
		l.registerModelGauges(ms)
	}
	l.mu.Unlock()
	l.current.Store(ms)
}

// registerModelGauges exposes one model's live §2.3 metrics. Gauges
// are evaluated at scrape time over the live window, so they roll with
// traffic instead of averaging over the process lifetime.
func (l *liveScore) registerModelGauges(ms *modelScore) {
	model := obs.Label{Name: "model", Value: ms.name}
	l.reg.GaugeFunc("pbppm_live_precision",
		"Rolling-window prefetch precision by model and popularity grade (grade=all aggregates).",
		func() float64 { return ms.score.Window(l.span).Precision() },
		model, obs.Label{Name: "grade", Value: "all"})
	for g := 0; g <= int(popularity.MaxGrade); g++ {
		g := g
		l.reg.GaugeFunc("pbppm_live_precision",
			"Rolling-window prefetch precision by model and popularity grade (grade=all aggregates).",
			func() float64 {
				fetched := ms.fetched[g].Sum(l.span)
				if fetched == 0 {
					return 0
				}
				return float64(ms.hits[g].Sum(l.span)) / float64(fetched)
			},
			model, obs.Label{Name: "grade", Value: strconv.Itoa(g)})
	}
	l.reg.GaugeFunc("pbppm_live_hit_ratio",
		"Rolling-window hit ratio by model: (cache hits + prefetch hits) / requests.",
		func() float64 { return ms.score.Window(l.span).HitRatio() },
		model)
	l.reg.GaugeFunc("pbppm_live_traffic_increase",
		"Rolling-window traffic increase by model: transferred/useful bytes - 1.",
		func() float64 { return ms.score.Window(l.span).TrafficIncrease() },
		model)
}

// byName finds the scorer for the model that issued a hint; unknown or
// empty names fall back to the current model.
func (l *liveScore) byName(name string) *modelScore {
	if name != "" {
		l.mu.Lock()
		ms := l.models[name]
		l.mu.Unlock()
		if ms != nil {
			return ms
		}
	}
	return l.current.Load()
}

// emit counts the event and forwards it to the configured listener.
func (l *liveScore) emit(ev HintEvent) {
	g := ev.Grade
	if g > popularity.MaxGrade {
		g = popularity.MaxGrade
	}
	l.events[ev.Type][g].Inc()
	if l.onEvent != nil {
		l.onEvent(ev)
	}
}

// demand scores one demand request against the current model.
func (l *liveScore) demand(size int64, o quality.Outcome) {
	if ms := l.current.Load(); ms != nil {
		ms.score.Demand(size, o)
	}
}

// observeLatency feeds the rolling demand-latency histogram.
func (l *liveScore) observeLatency(d time.Duration) {
	l.demandLatency.Observe(d)
}

// prefetched scores one hint-driven transfer against the model that
// issued the hint (empty for unhinted prefetch fetches).
func (l *liveScore) prefetched(model string, size int64) {
	if ms := l.byName(model); ms != nil {
		ms.score.Prefetched(size)
	}
}

// fetchedHint marks a hint's first prefetch fetch: the per-grade
// denominator and the Fetched lifecycle event.
func (l *liveScore) fetchedHint(client string, rec hintRecord, now time.Time) {
	grade := l.gradeOf(rec.url)
	if ms := l.byName(rec.model); ms != nil {
		ms.fetched[grade].Inc()
	}
	l.emit(HintEvent{
		Type: HintFetched, Client: client, URL: rec.url, Model: rec.model,
		Grade: grade, Probability: rec.prob, Age: now.Sub(rec.issued),
	})
}

// hit scores a confirmed prediction. served reports whether the
// prefetched copy actually served the request (a client report) — only
// then does the scorer count a prefetch hit; a demand re-fetch of a
// hinted URL confirms the prediction without the byte savings.
func (l *liveScore) hit(client string, rec hintRecord, size int64, served bool, now time.Time) {
	grade := l.gradeOf(rec.url)
	ms := l.byName(rec.model)
	if ms != nil {
		if served {
			ms.score.Demand(size, quality.PrefetchHit)
		}
		ms.hits[grade].Inc()
	}
	l.emit(HintEvent{
		Type: HintHit, Client: client, URL: rec.url, Model: rec.model,
		Grade: grade, Probability: rec.prob, Age: now.Sub(rec.issued),
	})
}

// wasted emits the end-of-life event for a fetched-but-never-hit hint.
func (l *liveScore) wasted(client string, rec hintRecord, now time.Time) {
	l.emit(HintEvent{
		Type: HintWasted, Client: client, URL: rec.url, Model: rec.model,
		Grade: l.gradeOf(rec.url), Probability: rec.prob, Age: now.Sub(rec.issued),
	})
}

// issued emits one Issued event per hint attached to a response.
func (l *liveScore) issued(client, model string, recs []hintRecord) {
	for _, rec := range recs {
		l.emit(HintEvent{
			Type: HintIssued, Client: client, URL: rec.url, Model: model,
			Grade: l.gradeOf(rec.url), Probability: rec.prob,
		})
	}
}

// windowSnapshot aggregates every model's rolling window (zero span
// selects the ring's full span).
func (l *liveScore) windowSnapshot(span time.Duration) quality.Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	var s quality.Snapshot
	for _, ms := range l.models {
		s = s.Add(ms.score.Window(span))
	}
	return s
}

// totalSnapshot aggregates every model's cumulative totals.
func (l *liveScore) totalSnapshot() quality.Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	var s quality.Snapshot
	for _, ms := range l.models {
		s = s.Add(ms.score.Total())
	}
	return s
}

// QualityTotal returns the cumulative live quality snapshot across all
// models — the online counterpart of a sim.Run result.
func (s *Server) QualityTotal() quality.Snapshot { return s.live.totalSnapshot() }

// QualityWindow returns the live quality snapshot over the trailing
// span (zero selects the full ring span).
func (s *Server) QualityWindow(span time.Duration) quality.Snapshot {
	return s.live.windowSnapshot(span)
}

// DemandLatencyGoodTotal reads the rolling demand-latency ring: how
// many demand requests completed within threshold over the trailing
// span, and how many completed at all. The cluster sums these across
// shards to bind an aggregate latency SLI.
func (s *Server) DemandLatencyGoodTotal(span, threshold time.Duration) (good, total int64) {
	return s.live.demandLatency.GoodTotal(span, threshold)
}

// SetGrader publishes the popularity grader used to grade hint-event
// URLs; the maintenance loop calls this with each rebuild's ranking.
func (s *Server) SetGrader(g popularity.Grader) { s.live.setGrader(g) }

// BindSLIs wires the server's live signals into an SLO engine:
// "latency" (demand requests under threshold), "precision" (prefetch
// hits over prefetched documents), and "hit_ratio" (hits over
// requests), all evaluated over the engine's rolling windows.
func (s *Server) BindSLIs(e *obs.SLOEngine) {
	e.Bind("latency", func(threshold, span time.Duration) (float64, float64) {
		good, total := s.live.demandLatency.GoodTotal(span, threshold)
		return float64(good), float64(total)
	})
	e.Bind("precision", func(_, span time.Duration) (float64, float64) {
		snap := s.live.windowSnapshot(span)
		return float64(snap.PrefetchHits), float64(snap.PrefetchedDocs)
	})
	e.Bind("hit_ratio", func(_, span time.Duration) (float64, float64) {
		snap := s.live.windowSnapshot(span)
		return float64(snap.CacheHits + snap.PrefetchHits), float64(snap.Requests)
	})
}
