package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pbppm/internal/obs"
	"pbppm/internal/popularity"
	"pbppm/internal/quality"
)

// eventLog collects hint-lifecycle events from Config.OnHintEvent.
type eventLog struct {
	mu     sync.Mutex
	events []HintEvent
}

func (l *eventLog) add(ev HintEvent) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *eventLog) ofType(t HintEventType) []HintEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []HintEvent
	for _, ev := range l.events {
		if ev.Type == t {
			out = append(out, ev)
		}
	}
	return out
}

// doReport sends a report-only beacon carrying the given entries.
func doReport(h http.Handler, client string, entries []ReportEntry) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set(HeaderClientID, client)
	req.Header.Set(HeaderPrefetchReport, FormatReport(entries))
	req.Header.Set(HeaderPrefetchReportOnly, "1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestHintLifecycleLiveScoring walks one hint through issued → fetched
// → hit (via a client report) and checks the event stream, the live
// quality scorer, and the exposed gauges agree.
func TestHintLifecycleLiveScoring(t *testing.T) {
	now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	log := &eventLog{}
	reg := obs.NewRegistry()
	grades := popularity.FixedGrades{"/home": 3, "/news": 2, "/news/today": 1}
	srv := New(testStore(), Config{
		Predictor:   trainedPB(),
		Obs:         reg,
		Clock:       func() time.Time { return now },
		OnHintEvent: log.add,
		Grades:      grades,
	})

	// Demand /home: a miss scored against PB-PPM, hints issued.
	doGet(srv, "/home", "c1", false)
	issued := log.ofType(HintIssued)
	if len(issued) == 0 {
		t.Fatal("no Issued events after a hinted response")
	}
	if issued[0].URL != "/news" || issued[0].Model != "PB-PPM" || issued[0].Grade != 2 {
		t.Fatalf("Issued event = %+v", issued[0])
	}
	if issued[0].Probability <= 0 {
		t.Errorf("Issued probability = %v, want > 0", issued[0].Probability)
	}

	// The client prefetches the hint two seconds later.
	now = now.Add(2 * time.Second)
	doGet(srv, "/news", "c1", true)
	fetched := log.ofType(HintFetched)
	if len(fetched) != 1 || fetched[0].URL != "/news" || fetched[0].Age != 2*time.Second {
		t.Fatalf("Fetched events = %+v", fetched)
	}

	// The user navigates to /news served from the prefetched copy; the
	// client reports the hit on a beacon.
	now = now.Add(3 * time.Second)
	rec := doReport(srv, "c1", []ReportEntry{{URL: "/news", Outcome: quality.PrefetchHit}})
	if rec.Code != http.StatusNoContent {
		t.Fatalf("report beacon status = %d, want 204", rec.Code)
	}
	hits := log.ofType(HintHit)
	if len(hits) != 1 || hits[0].URL != "/news" || hits[0].Age != 5*time.Second {
		t.Fatalf("Hit events = %+v", hits)
	}
	if hits[0].Model != "PB-PPM" || hits[0].Grade != 2 {
		t.Fatalf("Hit event attribution = %+v", hits[0])
	}

	// The scorer saw: one miss (4000B), one prefetch (3000B), one
	// prefetch hit (3000B useful).
	got := srv.QualityTotal()
	want := quality.Snapshot{
		Requests:         2,
		PrefetchHits:     1,
		PrefetchedDocs:   1,
		TransferredBytes: 7000,
		UsefulBytes:      7000,
		PrefetchedBytes:  3000,
	}
	if got != want {
		t.Fatalf("QualityTotal = %+v, want %+v", got, want)
	}
	if p := got.Precision(); p != 1 {
		t.Errorf("precision = %v, want 1", p)
	}

	// The rolling window agrees with the cumulative totals (nothing has
	// aged out), and the gauges expose it.
	if w := srv.QualityWindow(0); w != got {
		t.Errorf("QualityWindow = %+v, want %+v", w, got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if err := obs.ValidateExposition(text); err != nil {
		t.Fatalf("live exposition invalid: %v", err)
	}
	for _, wantLine := range []string{
		`pbppm_live_precision{model="PB-PPM",grade="all"} 1`,
		`pbppm_live_precision{model="PB-PPM",grade="2"} 1`,
		`pbppm_live_hit_ratio{model="PB-PPM"} 0.5`,
		`pbppm_hint_events_total{event="fetched",grade="2"} 1`,
		`pbppm_hint_events_total{event="hit",grade="2"} 1`,
	} {
		if !strings.Contains(text, wantLine) {
			t.Errorf("exposition missing %q", wantLine)
		}
	}
}

// TestDemandHitOnHintedURLScoresMiss: a demand re-fetch of a hinted URL
// confirms the prediction (lifecycle hit, legacy counter) but the
// prefetched copy did not serve it, so the scorer records a miss.
func TestDemandHitOnHintedURLScoresMiss(t *testing.T) {
	log := &eventLog{}
	srv := New(testStore(), Config{Predictor: trainedPB(), OnHintEvent: log.add})

	doGet(srv, "/home", "c1", false)
	doGet(srv, "/news", "c1", false) // demand, not prefetch
	if hits := log.ofType(HintHit); len(hits) != 1 {
		t.Fatalf("Hit events = %+v", hits)
	}
	if st := srv.Stats(); st.HintHits != 1 {
		t.Errorf("HintHits = %d, want 1", st.HintHits)
	}
	got := srv.QualityTotal()
	if got.PrefetchHits != 0 || got.Requests != 2 {
		t.Errorf("QualityTotal = %+v, want 2 requests and 0 prefetch hits", got)
	}
}

// TestWastedOnSessionExpiry: a fetched-but-never-hit hint emits Wasted
// when its session closes.
func TestWastedOnSessionExpiry(t *testing.T) {
	now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	log := &eventLog{}
	srv := New(testStore(), Config{
		Predictor:   trainedPB(),
		Clock:       func() time.Time { return now },
		SessionIdle: 10 * time.Minute,
		OnHintEvent: log.add,
	})

	doGet(srv, "/home", "c1", false)
	doGet(srv, "/news", "c1", true) // fetched, never navigated to
	now = now.Add(time.Hour)
	if removed := srv.ExpireSessions(); removed != 1 {
		t.Fatalf("ExpireSessions = %d, want 1", removed)
	}
	wasted := log.ofType(HintWasted)
	if len(wasted) != 1 || wasted[0].URL != "/news" {
		t.Fatalf("Wasted events = %+v", wasted)
	}
	if wasted[0].Age != time.Hour {
		t.Errorf("Wasted age = %v, want 1h", wasted[0].Age)
	}
	// Unfetched hints expire silently: no Wasted for /news/today even
	// if it was hinted.
	for _, ev := range wasted {
		if ev.URL == "/news/today" {
			t.Errorf("unfetched hint emitted Wasted: %+v", ev)
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	in := []ReportEntry{
		{URL: "/plain", Outcome: quality.CacheHit},
		{URL: "/has space;and,commas", Outcome: quality.PrefetchHit},
		{URL: "/pct%41", Outcome: quality.PrefetchHit},
	}
	out := ParseReport(FormatReport(in))
	if len(out) != len(in) {
		t.Fatalf("round trip lost entries: %+v", out)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("entry %d = %+v, want %+v", i, out[i], in[i])
		}
	}
	// Malformed entries are skipped, not fatal.
	got := ParseReport("/ok;h=c, broken, ;h=p, /bad;h=x")
	if len(got) != 1 || got[0].URL != "/ok" {
		t.Errorf("malformed parse = %+v", got)
	}
	if ParseReport("") != nil {
		t.Error("empty header parsed to entries")
	}
}

// TestBindSLIs wires a server into an SLO engine and checks all three
// signals deliver data from live traffic.
func TestBindSLIs(t *testing.T) {
	objs, err := obs.ParseObjectives(
		"name=lat,kind=latency,threshold=1s,target=0.5; kind=precision,target=0.01; kind=hit_ratio,target=0.01")
	if err != nil {
		t.Fatal(err)
	}
	engine := obs.NewSLOEngine(objs)
	srv := New(testStore(), Config{Predictor: trainedPB()})
	srv.BindSLIs(engine)

	doGet(srv, "/home", "c1", false)
	doGet(srv, "/news", "c1", true)
	doReport(srv, "c1", []ReportEntry{{URL: "/news", Outcome: quality.PrefetchHit}})

	rep := engine.Evaluate()
	for _, st := range rep.Objectives {
		if st.State == obs.SLOStateNoData {
			t.Errorf("objective %s has no data after live traffic", st.Name)
		}
		if st.State != obs.SLOStateOK {
			t.Errorf("objective %s state = %s, want ok (traffic easily meets the lax targets)", st.Name, st.State)
		}
	}
}

// TestLiveScoringConcurrent hammers the full live-scoring surface —
// demand traffic, prefetches, reports, model swaps, expiry, scrapes,
// and SLO evaluation — from many goroutines. Run with -race; it also
// sanity-checks conservation at the end.
func TestLiveScoringConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	engine := obs.NewSLOEngine([]obs.Objective{
		{Name: "lat", Kind: "latency", Threshold: time.Second, Target: 0.5},
	})
	srv := New(testStore(), Config{
		Predictor:   trainedPB(),
		Obs:         reg,
		SessionIdle: time.Minute,
		OnHintEvent: func(HintEvent) {},
	})
	srv.BindSLIs(engine)

	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	urls := []string{"/home", "/news", "/news/today", "/sports"}
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := string(rune('a' + g))
			for i := 0; i < perWorker; i++ {
				doGet(srv, urls[i%len(urls)], client, i%5 == 4)
				if i%7 == 0 {
					doReport(srv, client, []ReportEntry{{URL: "/news", Outcome: quality.PrefetchHit}})
				}
				if i%11 == 0 {
					doReport(srv, client, []ReportEntry{{URL: "/home", Outcome: quality.CacheHit}})
				}
			}
		}()
	}
	// Concurrent readers: metric scrapes and SLO evaluation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := reg.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
			_ = engine.Evaluate()
			srv.ExpireSessions()
		}
	}()
	wg.Wait()

	got := srv.QualityTotal()
	if got.Requests == 0 || got.TransferredBytes == 0 {
		t.Fatalf("no traffic scored: %+v", got)
	}
	if got.PrefetchHits > got.Requests {
		t.Errorf("conservation violated: %+v", got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(sb.String()); err != nil {
		t.Fatalf("exposition invalid after load: %v", err)
	}
}
