// Package server implements a deployable HTTP prefetching server — the
// system the paper's simulator models. The server holds a prediction
// model (any markov.Predictor: PB-PPM, standard PPM, LRS, Top-10),
// tracks per-client access sessions with the paper's 30-minute idle
// rule, continuously counts URL popularity, and attaches prefetch
// hints to every response it serves.
//
// HTTP/1.x cannot push unsolicited bodies, so the server uses the
// hint-based protocol of the literature the paper builds on (Cohen et
// al., Kroeger/Long/Mogul): each response carries an X-Prefetch header
// listing predicted URLs with probabilities, and a cooperating client
// (see Client) fetches them into its cache, tagging those fetches with
// X-Prefetch-Fetch so the server can keep demand statistics clean.
package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pbppm/internal/markov"
	"pbppm/internal/popularity"
	"pbppm/internal/session"
)

// Header names of the hint protocol.
const (
	// HeaderClientID identifies the end client (proxies forward it);
	// absent, the remote address is used.
	HeaderClientID = "X-Client-ID"
	// HeaderPrefetch carries the hint list:
	// "url;p=0.62, url2;p=0.31".
	HeaderPrefetch = "X-Prefetch"
	// HeaderPrefetchFetch marks a request as a hint-driven prefetch so
	// it is excluded from demand statistics and prediction contexts.
	HeaderPrefetchFetch = "X-Prefetch-Fetch"
)

// Document is one servable resource.
type Document struct {
	URL         string
	Body        []byte
	ContentType string
}

// ContentStore resolves URLs to documents.
type ContentStore interface {
	// Lookup returns the document for url; ok reports whether it exists.
	Lookup(url string) (doc Document, ok bool)
}

// MapStore is a ContentStore backed by a map. The zero value is empty.
type MapStore map[string]Document

// Lookup implements ContentStore.
func (m MapStore) Lookup(url string) (Document, bool) {
	d, ok := m[url]
	return d, ok
}

// Config parameterizes the server.
type Config struct {
	// Predictor serves prefetch hints; nil disables hinting until
	// SetPredictor is called.
	Predictor markov.Predictor
	// MaxHints caps the hint list per response; zero selects 4.
	MaxHints int
	// MaxHintBytes drops hints whose document exceeds this size; zero
	// selects the paper's 30 KB PB-PPM threshold.
	MaxHintBytes int64
	// SessionIdle splits per-client contexts; zero selects the paper's
	// 30 minutes.
	SessionIdle time.Duration
	// Clock supplies time for session bookkeeping; nil selects
	// time.Now. Tests inject a fake clock.
	Clock func() time.Time
	// OnSessionEnd, if set, receives each completed access session (a
	// client context closed by the idle rule or by ExpireSessions).
	// The maintenance loop uses it to feed its sliding window. It is
	// called without the server lock held and must not block for long.
	OnSessionEnd func(client string, urls []string, last time.Time)
}

func (c Config) maxHints() int {
	if c.MaxHints <= 0 {
		return 4
	}
	return c.MaxHints
}

func (c Config) maxHintBytes() int64 {
	if c.MaxHintBytes <= 0 {
		return 30 * 1024
	}
	return c.MaxHintBytes
}

func (c Config) idle() time.Duration {
	if c.SessionIdle <= 0 {
		return session.DefaultIdleTimeout
	}
	return c.SessionIdle
}

func (c Config) now() time.Time {
	if c.Clock != nil {
		return c.Clock()
	}
	return time.Now()
}

// Stats is a snapshot of server counters.
type Stats struct {
	DemandRequests   int64
	PrefetchRequests int64
	NotFound         int64
	HintsIssued      int64
	SessionsStarted  int64
}

// Server is an http.Handler serving a ContentStore with prefetch hints.
type Server struct {
	store ContentStore
	cfg   Config

	mu       sync.Mutex
	pred     markov.Predictor
	rank     *popularity.Ranking
	contexts map[string]*clientContext
	stats    Stats
}

// clientContext is one client's open access session.
type clientContext struct {
	urls []string
	last time.Time
}

// New returns a server over store. It panics on a nil store: a server
// without content is a programmer error.
func New(store ContentStore, cfg Config) *Server {
	if store == nil {
		panic("server: nil content store")
	}
	return &Server{
		store:    store,
		cfg:      cfg,
		pred:     cfg.Predictor,
		rank:     popularity.NewRanking(),
		contexts: make(map[string]*clientContext),
	}
}

// SetPredictor atomically swaps the prediction model; the maintenance
// loop calls this after a periodic rebuild.
func (s *Server) SetPredictor(p markov.Predictor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pred = p
}

// Ranking returns a snapshot copy of the server's online popularity
// counts, suitable for building a fresh PB-PPM model.
func (s *Server) Ranking() *popularity.Ranking {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := popularity.NewRanking()
	for _, u := range s.rank.Top(s.rank.Len()) {
		out.Observe(u, s.rank.Count(u))
	}
	return out
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// clientOf extracts the client identity from a request.
func clientOf(r *http.Request) string {
	if id := r.Header.Get(HeaderClientID); id != "" {
		return id
	}
	host := r.RemoteAddr
	if i := strings.LastIndexByte(host, ':'); i > 0 {
		host = host[:i]
	}
	return host
}

// ServeHTTP serves the document and attaches prefetch hints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	url := r.URL.Path
	doc, ok := s.store.Lookup(url)
	if !ok {
		s.mu.Lock()
		s.stats.NotFound++
		s.mu.Unlock()
		http.NotFound(w, r)
		return
	}

	isPrefetch := r.Header.Get(HeaderPrefetchFetch) != ""
	var hints []markov.Prediction
	if isPrefetch {
		s.mu.Lock()
		s.stats.PrefetchRequests++
		s.mu.Unlock()
	} else {
		hints = s.observeDemand(clientOf(r), url)
	}

	if len(hints) > 0 {
		w.Header().Set(HeaderPrefetch, formatHints(hints))
	}
	ct := doc.ContentType
	if ct == "" {
		ct = "text/html; charset=utf-8"
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set("Content-Length", strconv.Itoa(len(doc.Body)))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(doc.Body) //nolint:errcheck // client disconnects are not server errors
}

// observeDemand updates the client's session context, popularity, and
// statistics, and computes the prefetch hints for this response.
func (s *Server) observeDemand(client, url string) []markov.Prediction {
	now := s.cfg.now()
	var ended *clientContext
	defer func() {
		if ended != nil && s.cfg.OnSessionEnd != nil {
			s.cfg.OnSessionEnd(client, ended.urls, ended.last)
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()

	s.stats.DemandRequests++
	s.rank.Observe(url, 1)

	ctx := s.contexts[client]
	if ctx == nil || now.Sub(ctx.last) > s.cfg.idle() {
		if ctx != nil {
			ended = ctx
		}
		ctx = &clientContext{}
		s.contexts[client] = ctx
		s.stats.SessionsStarted++
	}
	ctx.urls = append(ctx.urls, url)
	ctx.last = now

	if s.pred == nil {
		return nil
	}
	preds := s.pred.Predict(ctx.urls)
	out := preds[:0]
	for _, p := range preds {
		if doc, ok := s.store.Lookup(p.URL); !ok || int64(len(doc.Body)) > s.cfg.maxHintBytes() {
			continue
		}
		out = append(out, p)
		if len(out) == s.cfg.maxHints() {
			break
		}
	}
	s.stats.HintsIssued += int64(len(out))
	return out
}

// ExpireSessions drops client contexts idle beyond the session window;
// long-running servers call it periodically to bound memory. Expired
// contexts are reported through OnSessionEnd.
func (s *Server) ExpireSessions() int {
	now := s.cfg.now()
	type endedCtx struct {
		client string
		ctx    *clientContext
	}
	var ended []endedCtx
	s.mu.Lock()
	for c, ctx := range s.contexts {
		if now.Sub(ctx.last) > s.cfg.idle() {
			delete(s.contexts, c)
			ended = append(ended, endedCtx{client: c, ctx: ctx})
		}
	}
	s.mu.Unlock()
	if s.cfg.OnSessionEnd != nil {
		for _, e := range ended {
			s.cfg.OnSessionEnd(e.client, e.ctx.urls, e.ctx.last)
		}
	}
	return len(ended)
}

// formatHints renders "url;p=0.62, url2;p=0.31".
func formatHints(hints []markov.Prediction) string {
	parts := make([]string, len(hints))
	for i, h := range hints {
		parts[i] = fmt.Sprintf("%s;p=%.3f", h.URL, h.Probability)
	}
	return strings.Join(parts, ", ")
}

// ParseHints inverts formatHints; malformed elements are skipped.
func ParseHints(header string) []markov.Prediction {
	if header == "" {
		return nil
	}
	var out []markov.Prediction
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		url, rest, found := strings.Cut(part, ";")
		p := markov.Prediction{URL: strings.TrimSpace(url), Probability: 0}
		if found {
			if v, ok := strings.CutPrefix(strings.TrimSpace(rest), "p="); ok {
				if f, err := strconv.ParseFloat(v, 64); err == nil {
					p.Probability = f
				}
			}
		}
		if p.URL != "" {
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Probability > out[j].Probability })
	return out
}
