// Package server implements a deployable HTTP prefetching server — the
// system the paper's simulator models. The server holds a prediction
// model (any markov.Predictor: PB-PPM, standard PPM, LRS, Top-10),
// tracks per-client access sessions with the paper's 30-minute idle
// rule, continuously counts URL popularity, and attaches prefetch
// hints to every response it serves.
//
// HTTP/1.x cannot push unsolicited bodies, so the server uses the
// hint-based protocol of the literature the paper builds on (Cohen et
// al., Kroeger/Long/Mogul): each response carries an X-Prefetch header
// listing predicted URLs with probabilities, and a cooperating client
// (see Client) fetches them into its cache, tagging those fetches with
// X-Prefetch-Fetch so the server can keep demand statistics clean.
//
// # Concurrency
//
// The serving hot path is lock-free: the prediction model is published
// as an immutable snapshot through an atomic pointer (swapped whole by
// SetPredictor), Predict on a published model performs no writes (the
// server detaches the model's usage recording on install), counters are
// atomics, and per-client session contexts live in a sharded map so
// concurrent clients never contend on one mutex. ServeHTTP never holds
// any global lock across Predict or ContentStore.Lookup.
package server

import (
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pbppm/internal/markov"
	"pbppm/internal/obs"
	"pbppm/internal/popularity"
	"pbppm/internal/quality"
	"pbppm/internal/session"
)

// Header names of the hint protocol.
const (
	// HeaderClientID identifies the end client (proxies forward it);
	// absent, the remote address is used.
	HeaderClientID = "X-Client-ID"
	// HeaderPrefetch carries the hint list:
	// "url;p=0.62, url2;p=0.31".
	HeaderPrefetch = "X-Prefetch"
	// HeaderPrefetchFetch marks a request as a hint-driven prefetch so
	// it is excluded from demand statistics and prediction contexts.
	HeaderPrefetchFetch = "X-Prefetch-Fetch"
)

// Document is one servable resource.
type Document struct {
	URL         string
	Body        []byte
	ContentType string
}

// ContentStore resolves URLs to documents. Lookup is called
// concurrently from request goroutines without any server lock held, so
// implementations must be safe for concurrent reads.
type ContentStore interface {
	// Lookup returns the document for url; ok reports whether it exists.
	Lookup(url string) (doc Document, ok bool)
}

// MapStore is a ContentStore backed by a map. The zero value is empty.
// Like any Go map it is safe for concurrent reads once populated.
type MapStore map[string]Document

// Lookup implements ContentStore.
func (m MapStore) Lookup(url string) (Document, bool) {
	d, ok := m[url]
	return d, ok
}

// Config parameterizes the server.
type Config struct {
	// Predictor serves prefetch hints; nil disables hinting until
	// SetPredictor is called. The server detaches the model's usage
	// recording (markov.UsageRecorder) on install so the prediction hot
	// path is read-only; re-enable it explicitly for diagnostics.
	Predictor markov.Predictor
	// MaxHints caps the hint list per response; zero selects 4.
	MaxHints int
	// MaxHintBytes drops hints whose document exceeds this size; zero
	// selects the paper's 30 KB PB-PPM threshold.
	MaxHintBytes int64
	// SessionIdle splits per-client contexts; zero selects the paper's
	// 30 minutes.
	SessionIdle time.Duration
	// Clock supplies time for session bookkeeping; nil selects
	// time.Now. Tests inject a fake clock.
	Clock func() time.Time
	// OnSessionEnd, if set, receives each completed access session (a
	// client context closed by the idle rule or by ExpireSessions).
	// The maintenance loop uses it to feed its sliding window. It is
	// called without any server lock held and must not block for long.
	OnSessionEnd func(client string, urls []string, last time.Time)
	// Obs registers the server's runtime metrics (request and latency
	// counters, hint precision counters) for /metrics exposition. Nil
	// keeps the same counters process-internal: Stats still works and
	// the hot path is identical either way.
	Obs *obs.Registry
	// Tracer samples per-stage predict-path timings (session lookup →
	// context assembly → Predict → hint filtering). Nil disables
	// tracing entirely; a tracer with sampling off costs one atomic
	// load per demand request.
	Tracer *obs.Tracer
	// LiveWindow is the rolling span behind the pbppm_live_* gauges
	// (precision, hit ratio, traffic increase, latency quantiles); zero
	// selects 5 minutes. The backing rings always cover at least an
	// hour so SLO burn rates have a long window to read.
	LiveWindow time.Duration
	// OnHintEvent, if set, receives every hint-lifecycle transition
	// (issued → fetched → hit | wasted). It is called without any
	// server lock held and must be cheap; events are counted in
	// pbppm_hint_events_total regardless.
	OnHintEvent func(HintEvent)
	// Grades grades hint-event URLs by popularity; nil grades
	// everything 0 until SetGrader publishes a ranking.
	Grades popularity.Grader
	// TrustedPeers lists the peer hosts (the host part of
	// http.Request.RemoteAddr) allowed to assert client identity through
	// the X-Client-ID header — typically the cluster router, which
	// resolves the identity once on ingress and stamps it on the
	// forwarded hop. Empty keeps the legacy behavior of honoring the
	// header from any peer (direct cooperating clients set it
	// themselves); non-empty makes the header spoof-proof: a request
	// from an unlisted peer falls back to its remote host as identity,
	// so a forged header can no longer poison another client's session
	// context.
	TrustedPeers []string
}

func (c Config) maxHints() int {
	if c.MaxHints <= 0 {
		return 4
	}
	return c.MaxHints
}

func (c Config) maxHintBytes() int64 {
	if c.MaxHintBytes <= 0 {
		return 30 * 1024
	}
	return c.MaxHintBytes
}

func (c Config) idle() time.Duration {
	if c.SessionIdle <= 0 {
		return session.DefaultIdleTimeout
	}
	return c.SessionIdle
}

func (c Config) now() time.Time {
	if c.Clock != nil {
		return c.Clock()
	}
	return time.Now()
}

func (c Config) liveWindow() time.Duration {
	if c.LiveWindow <= 0 {
		return 5 * time.Minute
	}
	return c.LiveWindow
}

// Stats is a snapshot of server counters.
type Stats struct {
	DemandRequests   int64
	PrefetchRequests int64
	NotFound         int64
	HintsIssued      int64
	SessionsStarted  int64
	SessionsExpired  int64
	// HintFetches counts prefetch requests for URLs this server hinted
	// to the same client — the cooperating client acting on hints.
	HintFetches int64
	// HintHits counts demand requests for URLs previously hinted to the
	// same client in its open session: predictions the user confirmed
	// by navigating there. HintHits over HintsIssued is the live lower
	// bound on prefetch precision (§4 of the paper); demand clicks a
	// client served from its own prefetch cache never reach the server
	// and are not counted.
	HintHits int64
	// HintReportsUnmatched counts client prefetch-hit reports that found
	// no outstanding hint record on this server — evicted hints, ended
	// sessions, or reports landing on a shard that never issued the hint
	// after a cluster rebalance.
	HintReportsUnmatched int64
}

// Add returns element-wise sums, so a cluster can aggregate its
// shards' snapshots into one Stats.
func (a Stats) Add(b Stats) Stats {
	a.DemandRequests += b.DemandRequests
	a.PrefetchRequests += b.PrefetchRequests
	a.NotFound += b.NotFound
	a.HintsIssued += b.HintsIssued
	a.SessionsStarted += b.SessionsStarted
	a.SessionsExpired += b.SessionsExpired
	a.HintFetches += b.HintFetches
	a.HintHits += b.HintHits
	a.HintReportsUnmatched += b.HintReportsUnmatched
	return a
}

// serverMetrics holds the live counters behind Stats, registered for
// /metrics exposition when Config.Obs is set. Every update is a single
// atomic operation; with a nil registry the metrics exist unregistered,
// so the serving path never branches on observability.
type serverMetrics struct {
	demandRequests   *obs.Counter
	prefetchRequests *obs.Counter
	notFound         *obs.Counter
	demandBytes      *obs.Counter
	prefetchBytes    *obs.Counter
	hintsIssued      *obs.Counter
	hintFetches      *obs.Counter
	hintHits         *obs.Counter
	reportsUnmatched *obs.Counter
	sessionsStarted  *obs.Counter
	sessionsExpired  *obs.Counter
	demandLatency    *obs.Histogram
	prefetchLatency  *obs.Histogram
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	kind := func(v string) obs.Label { return obs.Label{Name: "kind", Value: v} }
	return &serverMetrics{
		demandRequests: reg.Counter("pbppm_http_requests_total",
			"Requests served, split into demand navigation and hint-driven prefetches.",
			kind("demand")),
		prefetchRequests: reg.Counter("pbppm_http_requests_total",
			"Requests served, split into demand navigation and hint-driven prefetches.",
			kind("prefetch")),
		notFound: reg.Counter("pbppm_http_not_found_total",
			"Requests for URLs absent from the content store."),
		demandBytes: reg.Counter("pbppm_http_response_bytes_total",
			"Body bytes served; the prefetch/demand ratio is the live traffic-increase metric.",
			kind("demand")),
		prefetchBytes: reg.Counter("pbppm_http_response_bytes_total",
			"Body bytes served; the prefetch/demand ratio is the live traffic-increase metric.",
			kind("prefetch")),
		hintsIssued: reg.Counter("pbppm_hints_issued_total",
			"Prefetch hints attached to responses."),
		hintFetches: reg.Counter("pbppm_hint_fetches_total",
			"Hinted URLs fetched by cooperating clients (X-Prefetch-Fetch)."),
		hintHits: reg.Counter("pbppm_hint_hits_total",
			"Demand requests for URLs previously hinted to the same client."),
		reportsUnmatched: reg.Counter("pbppm_hint_reports_unmatched_total",
			"Client prefetch-hit reports that matched no outstanding hint record — the hint was evicted, its session ended, or (in a cluster) a rebalance moved the client to a shard that never issued it."),
		sessionsStarted: reg.Counter("pbppm_sessions_started_total",
			"Client access sessions opened."),
		sessionsExpired: reg.Counter("pbppm_sessions_expired_total",
			"Client access sessions closed by the idle rule."),
		demandLatency: reg.Histogram("pbppm_http_request_seconds",
			"Request handling latency by request kind.", nil, kind("demand")),
		prefetchLatency: reg.Histogram("pbppm_http_request_seconds",
			"Request handling latency by request kind.", nil, kind("prefetch")),
	}
}

// contextShards is the number of session-context shards. 64 keeps
// contention negligible at any realistic GOMAXPROCS while costing only
// a few kilobytes.
const contextShards = 64

// predictContextTail caps how many trailing session URLs are handed to
// Predict per request. The paper's models match at most their maximum
// branch height (7), and >95% of sessions have at most 9 clicks (§2.2),
// so 16 loses nothing while bounding per-request work for clients that
// never go idle.
const predictContextTail = 16

// contextShard is one slice of the per-client session map with its own
// lock, so concurrent clients hash to different locks.
type contextShard struct {
	mu       sync.Mutex
	contexts map[string]*clientContext
	// ending tracks in-flight OnSessionEnd deliveries by client: the
	// channel closes when the ended session's callbacks have run. A
	// successor session records it as predEnd so its own end waits for
	// the predecessor's delivery — per-client session ends reach
	// OnSessionEnd in session order even when expiry and a new request
	// race (see deliverSessionEnd).
	ending map[string]chan struct{}
}

// rankShards is the number of popularity-count shards; URL counting is
// the only per-request write shared by all clients, so it gets its own
// sharding keyed by URL hash.
const rankShards = 16

// rankShard is one slice of the online popularity counts.
type rankShard struct {
	mu   sync.Mutex
	rank *popularity.Ranking
}

// predictorCell boxes the published model so an interface value can sit
// behind an atomic.Pointer.
type predictorCell struct{ p markov.Predictor }

// Server is an http.Handler serving a ContentStore with prefetch hints.
type Server struct {
	store ContentStore
	cfg   Config

	// pred is the published prediction model, swapped whole and never
	// mutated in place: the serving read path loads it without locks.
	pred atomic.Pointer[predictorCell]

	ranks [rankShards]rankShard

	shards [contextShards]contextShard

	metrics  *serverMetrics
	tracer   *obs.Tracer
	live     *liveScore
	identity IdentityPolicy
}

// hintMemory caps how many outstanding hinted URLs are remembered per
// client context for the hint-hit counters; oldest hints are dropped
// first. 32 covers many responses' worth of hints at the default of 4
// per response; servers configured with larger hint lists get twice
// one response's worth (see Server.hintCap).
const hintMemory = 32

// hintCap bounds a context's outstanding hint records.
func (s *Server) hintCap() int {
	if c := 2 * s.cfg.maxHints(); c > hintMemory {
		return c
	}
	return hintMemory
}

// hintRecord is one outstanding hint issued to a client: enough state
// to emit lifecycle events and score a later hit against the model
// that made the prediction.
type hintRecord struct {
	url     string
	prob    float64
	model   string
	issued  time.Time
	fetched bool
}

// clientContext is one client's open access session, guarded by its
// shard's lock.
type clientContext struct {
	urls []string
	last time.Time
	// hinted holds recently issued, not-yet-confirmed hint records for
	// this client, consumed when a demand request or client report for
	// one arrives.
	hinted []hintRecord
	// predEnd, when non-nil, is the in-flight end delivery of this
	// client's previous session; this session's own end waits on it so
	// OnSessionEnd observes per-client session order.
	predEnd chan struct{}
}

// hintedIndex returns the position of url in ctx.hinted, or -1.
func (ctx *clientContext) hintedIndex(url string) int {
	for i := range ctx.hinted {
		if ctx.hinted[i].url == url {
			return i
		}
	}
	return -1
}

// recordHinted remembers issued hints, bounded by cap; re-hinted URLs
// refresh in place (keeping their fetched state). It returns the
// records dropped over the cap so the caller can emit Wasted events
// for any that were already fetched.
func (ctx *clientContext) recordHinted(recs []hintRecord, cap int) []hintRecord {
	for _, r := range recs {
		if i := ctx.hintedIndex(r.url); i >= 0 {
			ctx.hinted[i].prob = r.prob
			ctx.hinted[i].model = r.model
			ctx.hinted[i].issued = r.issued
			continue
		}
		ctx.hinted = append(ctx.hinted, r)
	}
	var dropped []hintRecord
	if over := len(ctx.hinted) - cap; over > 0 {
		dropped = append([]hintRecord(nil), ctx.hinted[:over]...)
		ctx.hinted = append(ctx.hinted[:0], ctx.hinted[over:]...)
	}
	return dropped
}

// New returns a server over store. It panics on a nil store: a server
// without content is a programmer error.
func New(store ContentStore, cfg Config) *Server {
	if store == nil {
		panic("server: nil content store")
	}
	s := &Server{
		store:    store,
		cfg:      cfg,
		metrics:  newServerMetrics(cfg.Obs),
		tracer:   cfg.Tracer,
		identity: NewIdentityPolicy(cfg.TrustedPeers),
	}
	// The live-scoring rings cover at least an hour (the SLO engine's
	// long burn-rate window) at a granularity sized for the live span.
	ringSpan := cfg.liveWindow()
	if ringSpan < time.Hour {
		ringSpan = time.Hour
	}
	s.live = newLiveScore(cfg.Obs, obs.Window{
		Span:        ringSpan,
		Granularity: cfg.liveWindow() / 30,
		Clock:       cfg.Clock,
	}, cfg.liveWindow(), cfg.OnHintEvent)
	if cfg.Grades != nil {
		s.live.setGrader(cfg.Grades)
	}
	for i := range s.ranks {
		s.ranks[i].rank = popularity.NewRanking()
	}
	for i := range s.shards {
		s.shards[i].contexts = make(map[string]*clientContext)
		s.shards[i].ending = make(map[string]chan struct{})
	}
	if cfg.Predictor != nil {
		s.SetPredictor(cfg.Predictor)
	}
	return s
}

// SetPredictor atomically publishes a new prediction model; the
// maintenance loop calls this after a periodic rebuild. In-flight
// requests keep using the snapshot they loaded. The model's usage
// recording is detached (markov.UsageRecorder) so predictions on the
// published model are genuinely read-only; re-enable it explicitly if
// you want utilization diagnostics from live traffic.
func (s *Server) SetPredictor(p markov.Predictor) {
	if ur, ok := p.(markov.UsageRecorder); ok {
		ur.SetUsageRecording(false)
	}
	s.pred.Store(&predictorCell{p: p})
	s.live.setModel(p.Name())
}

// predictor loads the current model snapshot, or nil.
func (s *Server) predictor() markov.Predictor {
	if c := s.pred.Load(); c != nil {
		return c.p
	}
	return nil
}

// fnv1a is the 32-bit FNV-1a hash used to pick shards.
func fnv1a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// shard returns the context shard for a client.
func (s *Server) shard(client string) *contextShard {
	return &s.shards[fnv1a(client)%contextShards]
}

// observeRank counts one access to url in its popularity shard.
func (s *Server) observeRank(url string) {
	rs := &s.ranks[fnv1a(url)%rankShards]
	rs.mu.Lock()
	rs.rank.Observe(url, 1)
	rs.mu.Unlock()
}

// Ranking returns a merged snapshot copy of the server's online
// popularity counts, suitable for building a fresh PB-PPM model.
func (s *Server) Ranking() *popularity.Ranking {
	out := popularity.NewRanking()
	for i := range s.ranks {
		rs := &s.ranks[i]
		rs.mu.Lock()
		for _, u := range rs.rank.Top(rs.rank.Len()) {
			out.Observe(u, rs.rank.Count(u))
		}
		rs.mu.Unlock()
	}
	return out
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{
		DemandRequests:       s.metrics.demandRequests.Value(),
		PrefetchRequests:     s.metrics.prefetchRequests.Value(),
		NotFound:             s.metrics.notFound.Value(),
		HintsIssued:          s.metrics.hintsIssued.Value(),
		SessionsStarted:      s.metrics.sessionsStarted.Value(),
		SessionsExpired:      s.metrics.sessionsExpired.Value(),
		HintFetches:          s.metrics.hintFetches.Value(),
		HintHits:             s.metrics.hintHits.Value(),
		HintReportsUnmatched: s.metrics.reportsUnmatched.Value(),
	}
}

// IdentityPolicy resolves the client identity of a request and decides
// which peers may assert it through the X-Client-ID header. The zero
// value (and NewIdentityPolicy(nil)) trusts the header from any peer —
// the legacy single-server behavior, where cooperating clients speak
// directly to the server. A policy with trusted peers honors the
// header only from those hosts (the cluster router stamps it on the
// forwarded hop) and treats everyone else by remote host, so a forged
// header cannot impersonate another client.
type IdentityPolicy struct {
	trusted map[string]bool
}

// NewIdentityPolicy builds a policy trusting the given peer hosts;
// empty input trusts every peer.
func NewIdentityPolicy(trustedPeers []string) IdentityPolicy {
	if len(trustedPeers) == 0 {
		return IdentityPolicy{}
	}
	m := make(map[string]bool, len(trustedPeers))
	for _, p := range trustedPeers {
		if p != "" {
			m[p] = true
		}
	}
	return IdentityPolicy{trusted: m}
}

// ClientOf resolves the request's client identity under the policy.
func (ip IdentityPolicy) ClientOf(r *http.Request) string {
	if id := r.Header.Get(HeaderClientID); id != "" && ip.trustsPeer(r.RemoteAddr) {
		return id
	}
	return remoteHost(r)
}

// trustsPeer reports whether the peer behind remoteAddr may assert the
// identity header.
func (ip IdentityPolicy) trustsPeer(remoteAddr string) bool {
	if ip.trusted == nil {
		return true
	}
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil || host == "" {
		host = remoteAddr
	}
	return ip.trusted[host]
}

// remoteHost extracts the request's remote host. Remote addresses are
// split with net.SplitHostPort so bracketed IPv6 addresses
// ("[::1]:4242") keep their full host; addresses without a port are
// used as-is.
func remoteHost(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil || host == "" {
		return r.RemoteAddr
	}
	return host
}

// clientOf is the trust-any resolution used by the single-server path
// (no configured TrustedPeers); kept as a helper for tests.
func clientOf(r *http.Request) string {
	return IdentityPolicy{}.ClientOf(r)
}

// ServeHTTP serves the document and attaches prefetch hints. It holds
// no global lock: document lookup and prediction run on an immutable
// model snapshot, and session bookkeeping touches only the client's
// context shard.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	client := s.identity.ClientOf(r)
	// Client hit reports ride along on any request (and on report-only
	// beacons); ingest them before demand accounting so a batch
	// attached to a navigation scores in client-event order.
	if rep := r.Header.Get(HeaderPrefetchReport); rep != "" {
		s.ingestReports(client, ParseReport(rep))
	}
	if r.Header.Get(HeaderPrefetchReportOnly) != "" {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	url := r.URL.Path
	doc, ok := s.store.Lookup(url)
	if !ok {
		s.metrics.notFound.Inc()
		http.NotFound(w, r)
		return
	}

	isPrefetch := r.Header.Get(HeaderPrefetchFetch) != ""
	var hints []markov.Prediction
	if isPrefetch {
		s.metrics.prefetchRequests.Inc()
		s.metrics.prefetchBytes.Add(int64(len(doc.Body)))
		s.observePrefetchFetch(client, url, int64(len(doc.Body)))
	} else {
		s.metrics.demandRequests.Inc()
		s.metrics.demandBytes.Add(int64(len(doc.Body)))
		hints = s.observeDemand(client, url, int64(len(doc.Body)))
	}

	if len(hints) > 0 {
		w.Header().Set(HeaderPrefetch, FormatHints(hints))
	}
	ct := doc.ContentType
	if ct == "" {
		ct = "text/html; charset=utf-8"
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set("Content-Length", strconv.Itoa(len(doc.Body)))
	elapsed := time.Since(start)
	if isPrefetch {
		s.metrics.prefetchLatency.Observe(elapsed)
	} else {
		s.metrics.demandLatency.Observe(elapsed)
		s.live.observeLatency(elapsed)
	}
	if r.Method == http.MethodHead {
		return
	}
	w.Write(doc.Body) //nolint:errcheck // client disconnects are not server errors
}

// observePrefetchFetch credits a hint-driven prefetch against the
// client's outstanding hints and scores the transfer as prefetch
// traffic. A prefetch does not open sessions or extend the idle clock.
func (s *Server) observePrefetchFetch(client, url string, size int64) {
	now := s.cfg.now()
	sh := s.shard(client)
	sh.mu.Lock()
	ctx := sh.contexts[client]
	var rec hintRecord
	found, first := false, false
	if ctx != nil {
		// The hint stays outstanding: a later demand click or client
		// report for it is the prediction coming true.
		if i := ctx.hintedIndex(url); i >= 0 {
			if !ctx.hinted[i].fetched {
				ctx.hinted[i].fetched = true
				first = true
			}
			rec = ctx.hinted[i]
			found = true
		}
	}
	sh.mu.Unlock()
	if found {
		s.metrics.hintFetches.Inc()
	}
	if first {
		s.live.fetchedHint(client, rec, now)
	}
	// Every hint-driven transfer counts as prefetch traffic, scored
	// against the model that issued the hint when we know it.
	s.live.prefetched(rec.model, size)
}

// ingestReports scores a client's batched local hit outcomes (see
// HeaderPrefetchReport): a prefetch-hit report closes the matching
// hint record and scores a PrefetchHit against the issuing model; a
// cache-hit report scores an ordinary CacheHit. Sizes come from the
// content store, mirroring what the client's cached copy held.
func (s *Server) ingestReports(client string, reports []ReportEntry) {
	if len(reports) == 0 {
		return
	}
	now := s.cfg.now()
	sh := s.shard(client)
	for _, rep := range reports {
		var size int64
		if doc, ok := s.store.Lookup(rep.URL); ok {
			size = int64(len(doc.Body))
		}
		switch rep.Outcome {
		case quality.PrefetchHit:
			sh.mu.Lock()
			rec := hintRecord{url: rep.URL, issued: now}
			matched := false
			if ctx := sh.contexts[client]; ctx != nil {
				if i := ctx.hintedIndex(rep.URL); i >= 0 {
					rec = ctx.hinted[i]
					ctx.hinted = append(ctx.hinted[:i], ctx.hinted[i+1:]...)
					matched = true
				}
			}
			sh.mu.Unlock()
			// An unmatched report still scores (the client really was
			// served from its prefetch cache) against a synthetic record,
			// but it is counted: a rising rate means hints are being
			// evicted too aggressively or, in a cluster, reports are
			// landing on shards that never issued them (rebalance).
			if !matched {
				s.metrics.reportsUnmatched.Inc()
			}
			s.live.hit(client, rec, size, true, now)
		case quality.CacheHit:
			s.live.demand(size, quality.CacheHit)
		}
	}
}

// predBufPool recycles prediction scratch buffers across requests. The
// markov.BufferedPredictor contract guarantees the model neither
// retains the buffer nor aliases its own storage into it, so a buffer
// can be returned to the pool as soon as the hints have been filtered
// out of it. With an arena-frozen model this makes the per-request
// prediction completely allocation-free in steady state.
var predBufPool = sync.Pool{
	New: func() any { return new([]markov.Prediction) },
}

// observeDemand updates the client's session context, popularity, and
// statistics, scores the request against the live quality model, and
// computes the prefetch hints for this response. Only the client's
// context shard (and briefly the ranking mutex) is locked; prediction
// and store lookups run lock-free on a context snapshot.
func (s *Server) observeDemand(client, url string, size int64) []markov.Prediction {
	span := s.tracer.Start()
	now := s.cfg.now()
	s.observeRank(url)
	// Every demand request that reaches the server is a miss in the
	// client's caches; hits are scored from client reports instead.
	s.live.demand(size, quality.Miss)

	sh := s.shard(client)
	sh.mu.Lock()
	ctx := sh.contexts[client]
	var ended *clientContext
	var endDone chan struct{}
	if ctx == nil || now.Sub(ctx.last) > s.cfg.idle() {
		if ctx != nil {
			ended = ctx
			endDone = make(chan struct{})
			sh.ending[client] = endDone
		}
		// The successor session chains onto whatever end delivery is in
		// flight for this client — the rotation just recorded, or one an
		// earlier ExpireSessions has not finished delivering — so its own
		// end cannot overtake the predecessor's.
		ctx = &clientContext{predEnd: sh.ending[client]}
		sh.contexts[client] = ctx
		s.metrics.sessionsStarted.Inc()
	}
	// A demand click on a previously hinted URL confirms the prediction;
	// consume the hint so one issuance counts at most one hit.
	hintHit := false
	var hitRec hintRecord
	if i := ctx.hintedIndex(url); i >= 0 {
		hitRec = ctx.hinted[i]
		ctx.hinted = append(ctx.hinted[:i], ctx.hinted[i+1:]...)
		hintHit = true
	}
	ctx.urls = append(ctx.urls, url)
	ctx.last = now
	span.Mark(obs.StageSession)
	// Snapshot the context tail so prediction runs without the shard
	// lock (a concurrent request from the same client may append to
	// ctx.urls). Only the tail is copied: every shipped model matches at
	// most its branch height (≤ 7 URLs), so this keeps the hot path O(1)
	// even for marathon sessions while the full session is still
	// recorded for OnSessionEnd training.
	tail := ctx.urls
	if len(tail) > predictContextTail {
		tail = tail[len(tail)-predictContextTail:]
	}
	snapshot := make([]string, len(tail))
	copy(snapshot, tail)
	sh.mu.Unlock()

	if hintHit {
		s.metrics.hintHits.Inc()
		// The prediction came true, but the request reached the server,
		// so the prefetched copy (if any) did not serve it: a lifecycle
		// hit without the byte savings — already scored as a Miss above.
		s.live.hit(client, hitRec, size, false, now)
	}
	if ended != nil {
		s.deliverSessionEnd(sh, client, ended, endDone, now)
	}
	span.Mark(obs.StageContext)

	pred := s.predictor()
	if pred == nil {
		span.Finish(client, url)
		return nil
	}
	bufp := predBufPool.Get().(*[]markov.Prediction)
	preds := markov.PredictInto(pred, snapshot, *bufp)
	span.Mark(obs.StagePredict)
	// Filter into a fresh slice: preds lives in pooled scratch that the
	// next request will overwrite (the markov.BufferedPredictor contract
	// says the result reuses buf's storage), while the hints escape into
	// the client context. Compacting in place over preds[:0] and handing
	// that out would let a recycled buffer corrupt an earlier response.
	limit := s.cfg.maxHints()
	if limit > len(preds) {
		limit = len(preds)
	}
	out := make([]markov.Prediction, 0, limit)
	for _, p := range preds {
		if doc, ok := s.store.Lookup(p.URL); !ok || int64(len(doc.Body)) > s.cfg.maxHintBytes() {
			continue
		}
		out = append(out, p)
		if len(out) == limit {
			break
		}
	}
	*bufp = preds[:0]
	predBufPool.Put(bufp)
	s.metrics.hintsIssued.Add(int64(len(out)))
	if len(out) > 0 {
		model := pred.Name()
		recs := make([]hintRecord, len(out))
		for i, p := range out {
			recs[i] = hintRecord{url: p.URL, prob: p.Probability, model: model, issued: now}
		}
		// Remember what was hinted so later requests can close the
		// precision loop. Re-locking is required — prediction above ran
		// without the shard lock — and the context is re-fetched because
		// an expiry may have removed it meanwhile.
		var dropped []hintRecord
		sh.mu.Lock()
		if ctx := sh.contexts[client]; ctx != nil {
			dropped = ctx.recordHinted(recs, s.hintCap())
		}
		sh.mu.Unlock()
		s.live.issued(client, model, recs)
		s.wasteHints(client, dropped, now)
	}
	span.Mark(obs.StageHints)
	span.Finish(client, url)
	return out
}

// wasteHints emits Wasted lifecycle events for hint records leaving a
// context (session end or cap eviction) that were fetched but never
// hit — prefetched transfers that bought nothing.
func (s *Server) wasteHints(client string, recs []hintRecord, now time.Time) {
	for _, rec := range recs {
		if rec.fetched {
			s.live.wasted(client, rec, now)
		}
	}
}

// contextURLs returns a copy of the client's open session context, or
// nil when no session is open. It is a diagnostic and test hook.
func (s *Server) contextURLs(client string) []string {
	sh := s.shard(client)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ctx := sh.contexts[client]
	if ctx == nil {
		return nil
	}
	return append([]string(nil), ctx.urls...)
}

// deliverSessionEnd runs a closed session's callbacks — Wasted hint
// events and OnSessionEnd — with no server lock held. It first waits
// for the client's previous session end (if one is still in flight) so
// the maintainer observes each client's sessions in session order, and
// closes done afterwards so the client's next end waits on this one.
// The registration in sh.ending is cleaned up unless a later end has
// already replaced it.
func (s *Server) deliverSessionEnd(sh *contextShard, client string, ctx *clientContext, done chan struct{}, now time.Time) {
	defer func() {
		close(done)
		sh.mu.Lock()
		if sh.ending[client] == done {
			delete(sh.ending, client)
		}
		sh.mu.Unlock()
	}()
	if ctx.predEnd != nil {
		<-ctx.predEnd
	}
	s.wasteHints(client, ctx.hinted, now)
	if s.cfg.OnSessionEnd != nil {
		s.cfg.OnSessionEnd(client, ctx.urls, ctx.last)
	}
}

// endedCtx is one context removed from its shard, awaiting callback
// delivery outside the shard lock.
type endedCtx struct {
	sh     *contextShard
	client string
	ctx    *clientContext
	done   chan struct{}
}

// removeSessions removes every context matching keep==false from the
// shards and returns them registered for ordered end delivery; the
// caller delivers them without any lock held.
func (s *Server) removeSessions(expire func(*clientContext) bool) []endedCtx {
	var ended []endedCtx
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for c, ctx := range sh.contexts {
			if expire(ctx) {
				delete(sh.contexts, c)
				done := make(chan struct{})
				sh.ending[c] = done
				ended = append(ended, endedCtx{sh: sh, client: c, ctx: ctx, done: done})
			}
		}
		sh.mu.Unlock()
	}
	return ended
}

// ExpireSessions drops client contexts idle beyond the session window;
// long-running servers call it periodically to bound memory. Expired
// contexts are reported through OnSessionEnd in per-client session
// order (an expiry racing a new request from the same client cannot
// deliver the newer session's end first). Each shard is locked
// independently, so expiry never stalls the whole server.
func (s *Server) ExpireSessions() int {
	now := s.cfg.now()
	ended := s.removeSessions(func(ctx *clientContext) bool {
		return now.Sub(ctx.last) > s.cfg.idle()
	})
	s.metrics.sessionsExpired.Add(int64(len(ended)))
	for _, e := range ended {
		s.deliverSessionEnd(e.sh, e.client, e.ctx, e.done, now)
	}
	return len(ended)
}

// FlushSessions ends every open client context regardless of idleness,
// delivering each through OnSessionEnd like ExpireSessions. A cluster
// uses it to drain a shard leaving the ring so its in-progress
// sessions still reach the training window; a server shutting down can
// use it the same way.
func (s *Server) FlushSessions() int {
	now := s.cfg.now()
	ended := s.removeSessions(func(*clientContext) bool { return true })
	s.metrics.sessionsExpired.Add(int64(len(ended)))
	for _, e := range ended {
		s.deliverSessionEnd(e.sh, e.client, e.ctx, e.done, now)
	}
	return len(ended)
}

// OpenSession describes one open client context: how many URLs the
// session has accumulated and how many hint records are outstanding.
// The cluster's rebalance accounting reads these to price a ring
// change (sessions remapped, hints orphaned).
type OpenSession struct {
	Client string
	URLs   int
	Hints  int
	Last   time.Time
}

// OpenSessions snapshots the currently open client contexts. Each
// shard is locked briefly and independently.
func (s *Server) OpenSessions() []OpenSession {
	var out []OpenSession
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for c, ctx := range sh.contexts {
			out = append(out, OpenSession{
				Client: c, URLs: len(ctx.urls), Hints: len(ctx.hinted), Last: ctx.last,
			})
		}
		sh.mu.Unlock()
	}
	return out
}
