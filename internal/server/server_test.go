package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pbppm/internal/core"
	"pbppm/internal/markov"
	"pbppm/internal/popularity"
)

// testStore builds a small site: /home links into a news chain.
func testStore() MapStore {
	store := MapStore{}
	for url, size := range map[string]int{
		"/home":       4000,
		"/news":       3000,
		"/news/today": 2500,
		"/sports":     3500,
		"/huge":       64 * 1024,
	} {
		store[url] = Document{URL: url, Body: make([]byte, size)}
	}
	return store
}

// trainedPB builds a PB-PPM model that knows /home -> /news -> /news/today.
func trainedPB() *core.Model {
	grades := popularity.FixedGrades{"/home": 3, "/news": 2, "/news/today": 1, "/sports": 2, "/huge": 3}
	m := core.New(grades, core.Config{})
	for i := 0; i < 5; i++ {
		m.TrainSequence([]string{"/home", "/news", "/news/today"})
	}
	return m
}

func TestServeDocument(t *testing.T) {
	srv := New(testStore(), Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/home")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if got := resp.ContentLength; got != 4000 {
		t.Errorf("Content-Length = %d", got)
	}
	if st := srv.Stats(); st.DemandRequests != 1 || st.SessionsStarted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNotFoundAndMethods(t *testing.T) {
	srv := New(testStore(), Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %s", resp.Status)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/home", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %s", resp.Status)
	}
	if st := srv.Stats(); st.NotFound != 1 {
		t.Errorf("NotFound = %d", st.NotFound)
	}
}

func TestHintsIssued(t *testing.T) {
	srv := New(testStore(), Config{Predictor: trainedPB()})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/home", nil)
	req.Header.Set(HeaderClientID, "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	hints := ParseHints(resp.Header.Get(HeaderPrefetch))
	if len(hints) == 0 {
		t.Fatal("no hints on /home response")
	}
	if hints[0].URL != "/news" {
		t.Errorf("first hint = %+v, want /news", hints[0])
	}
	if st := srv.Stats(); st.HintsIssued == 0 {
		t.Error("HintsIssued = 0")
	}
}

func TestHintsRespectSizeCap(t *testing.T) {
	grades := popularity.FixedGrades{"/home": 3, "/huge": 3}
	m := core.New(grades, core.Config{})
	for i := 0; i < 5; i++ {
		m.TrainSequence([]string{"/home", "/huge"})
	}
	srv := New(testStore(), Config{Predictor: m, MaxHintBytes: 10 * 1024})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/home", nil)
	req.Header.Set(HeaderClientID, "bob")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, h := range ParseHints(resp.Header.Get(HeaderPrefetch)) {
		if h.URL == "/huge" {
			t.Error("oversize document hinted")
		}
	}
}

func TestPrefetchRequestsExcludedFromContext(t *testing.T) {
	srv := New(testStore(), Config{Predictor: trainedPB()})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(url string, prefetch bool) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+url, nil)
		req.Header.Set(HeaderClientID, "carol")
		if prefetch {
			req.Header.Set(HeaderPrefetchFetch, "1")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	get("/home", false)
	get("/news", true) // prefetch: must not pollute the session context
	get("/sports", false)

	st := srv.Stats()
	if st.DemandRequests != 2 || st.PrefetchRequests != 1 {
		t.Errorf("stats = %+v", st)
	}
	ctx := srv.contextURLs("carol")
	if strings.Join(ctx, " ") != "/home /sports" {
		t.Errorf("context = %v", ctx)
	}
}

func TestSessionIdleSplitsContext(t *testing.T) {
	now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	srv := New(testStore(), Config{Clock: clock, SessionIdle: 10 * time.Minute})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(url string) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+url, nil)
		req.Header.Set(HeaderClientID, "dave")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	get("/home")
	now = now.Add(11 * time.Minute)
	get("/news")
	if st := srv.Stats(); st.SessionsStarted != 2 {
		t.Errorf("SessionsStarted = %d, want 2", st.SessionsStarted)
	}
	ctx := srv.contextURLs("dave")
	if len(ctx) != 1 || ctx[0] != "/news" {
		t.Errorf("context after idle split = %v", ctx)
	}
	// Expiry removes contexts idle past the window.
	now = now.Add(time.Hour)
	if removed := srv.ExpireSessions(); removed != 1 {
		t.Errorf("ExpireSessions = %d", removed)
	}
}

func TestOnlineRankingAndSetPredictor(t *testing.T) {
	srv := New(testStore(), Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for i := 0; i < 5; i++ {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/home", nil)
		req.Header.Set(HeaderClientID, fmt.Sprintf("c%d", i))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	rank := srv.Ranking()
	if rank.Count("/home") != 5 {
		t.Errorf("ranking count = %d", rank.Count("/home"))
	}
	// Rebuild a model from the online ranking and install it.
	m := core.New(rank, core.Config{})
	m.TrainSequence([]string{"/home", "/news"})
	srv.SetPredictor(m)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/home", nil)
	req.Header.Set(HeaderClientID, "fresh")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(HeaderPrefetch) == "" {
		t.Error("no hints after SetPredictor")
	}
}

func TestClientOf(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:9184":     "127.0.0.1",   // IPv4 with port
		"[2001:db8::1]:4242": "2001:db8::1", // bracketed IPv6 with port
		"[::1]:80":           "::1",         // loopback IPv6
		"2001:db8::1":        "2001:db8::1", // raw IPv6, no port: must not be truncated at the last colon
		"localhost:8080":     "localhost",   // hostname with port
		"@":                  "@",           // garbage passes through
	}
	for addr, want := range cases {
		req := httptest.NewRequest(http.MethodGet, "/home", nil)
		req.RemoteAddr = addr
		if got := clientOf(req); got != want {
			t.Errorf("clientOf(%q) = %q, want %q", addr, got, want)
		}
	}
	// The explicit client header always wins.
	req := httptest.NewRequest(http.MethodGet, "/home", nil)
	req.RemoteAddr = "[::1]:80"
	req.Header.Set(HeaderClientID, "alice")
	if got := clientOf(req); got != "alice" {
		t.Errorf("header client = %q, want alice", got)
	}
}

func TestSetPredictorDetachesUsageRecording(t *testing.T) {
	m := trainedPB()
	if !m.UsageRecording() {
		t.Fatal("fresh model should record usage")
	}
	srv := New(testStore(), Config{})
	srv.SetPredictor(m)
	if m.UsageRecording() {
		t.Error("published model still records usage marks")
	}
	// The hot path stays functional on the read-only snapshot.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/home", nil)
	req.Header.Set(HeaderClientID, "ro")
	srv.ServeHTTP(rec, req)
	if rec.Header().Get(HeaderPrefetch) == "" {
		t.Error("no hints from read-only model")
	}
}

func TestParseHints(t *testing.T) {
	hints := ParseHints("/a;p=0.500, /b;p=0.250,/c, bogus;;p=x, ;p=1")
	if len(hints) != 4 {
		t.Fatalf("hints = %+v", hints)
	}
	if hints[0].URL != "/a" || hints[0].Probability != 0.5 {
		t.Errorf("first = %+v", hints[0])
	}
	if hints[1].URL != "/b" || hints[1].Probability != 0.25 {
		t.Errorf("second = %+v", hints[1])
	}
	if ParseHints("") != nil {
		t.Error("empty header parsed to hints")
	}
}

func TestNewPanicsOnNilStore(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(nil) did not panic")
		}
	}()
	New(nil, Config{})
}

func TestConcurrentClients(t *testing.T) {
	srv := New(testStore(), Config{Predictor: trainedPB()})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				url := []string{"/home", "/news", "/news/today", "/sports"}[j%4]
				req, _ := http.NewRequest(http.MethodGet, ts.URL+url, nil)
				req.Header.Set(HeaderClientID, fmt.Sprintf("client%d", id))
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	if st := srv.Stats(); st.DemandRequests != 160 {
		t.Errorf("DemandRequests = %d, want 160", st.DemandRequests)
	}
}

func TestOnSessionEndHook(t *testing.T) {
	now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	var mu sync.Mutex
	var ended [][]string
	srv := New(testStore(), Config{
		Clock:       clock,
		SessionIdle: 10 * time.Minute,
		OnSessionEnd: func(client string, urls []string, last time.Time) {
			mu.Lock()
			ended = append(ended, append([]string{client}, urls...))
			mu.Unlock()
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(url string) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+url, nil)
		req.Header.Set(HeaderClientID, "erin")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	get("/home")
	get("/news")
	now = now.Add(time.Hour)
	get("/sports") // idle split ends the first session

	mu.Lock()
	n := len(ended)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("ended sessions = %d, want 1", n)
	}
	if strings.Join(ended[0], " ") != "erin /home /news" {
		t.Errorf("ended = %v", ended[0])
	}

	// Expiry also reports the open session.
	now = now.Add(time.Hour)
	if removed := srv.ExpireSessions(); removed != 1 {
		t.Errorf("ExpireSessions = %d", removed)
	}
	mu.Lock()
	n = len(ended)
	mu.Unlock()
	if n != 2 {
		t.Errorf("ended sessions after expiry = %d, want 2", n)
	}
}

// sharedBufferPredictor returns every prediction batch through the same
// backing array, the way a model serving from a reused buffer would.
// Regression: observeDemand used to filter hints into preds[:0],
// compacting them in place over this shared array and corrupting the
// batch another request was still reading.
type sharedBufferPredictor struct {
	buf   []markov.Prediction
	fresh []markov.Prediction
}

func (p *sharedBufferPredictor) Name() string               { return "shared-buf" }
func (p *sharedBufferPredictor) TrainSequence(seq []string) {}
func (p *sharedBufferPredictor) NodeCount() int             { return len(p.fresh) }
func (p *sharedBufferPredictor) Predict(ctx []string) []markov.Prediction {
	copy(p.buf, p.fresh)
	return p.buf[:len(p.fresh)]
}

func TestHintFilteringDoesNotMutatePredictorSlice(t *testing.T) {
	// /missing1 and /missing2 are not in the store, so filtering keeps
	// only /news and /sports — into slots 0 and 1 under the old in-place
	// compaction, overwriting /missing1 and /news in the shared buffer.
	fresh := []markov.Prediction{
		{URL: "/missing1", Probability: 0.9},
		{URL: "/news", Probability: 0.8},
		{URL: "/missing2", Probability: 0.7},
		{URL: "/sports", Probability: 0.6},
	}
	pred := &sharedBufferPredictor{buf: make([]markov.Prediction, len(fresh)), fresh: fresh}
	srv := New(testStore(), Config{Predictor: pred})

	hints := srv.observeDemand("alice", "/home", 0)
	if len(hints) != 2 || hints[0].URL != "/news" || hints[1].URL != "/sports" {
		t.Fatalf("hints = %+v", hints)
	}
	// The predictor's buffer must still hold the batch it returned.
	for i, p := range pred.buf {
		if p != fresh[i] {
			t.Errorf("predictor buffer slot %d mutated: %+v, want %+v", i, p, fresh[i])
		}
	}
	// A second request through the same backing array sees intact data.
	hints2 := srv.observeDemand("bob", "/home", 0)
	if len(hints2) != 2 || hints2[0].URL != "/news" || hints2[1].URL != "/sports" {
		t.Errorf("second batch corrupted: %+v", hints2)
	}
	// And the two hint slices are independent of each other.
	hints[0].URL = "/clobbered"
	if hints2[0].URL != "/news" {
		t.Error("hint slices share a backing array across requests")
	}
}
