// Package session turns raw access-log streams into per-client access
// sessions, the unit the prediction models are trained on.
//
// Following §1 and §2.2 of the paper: a session is a sequence of URLs
// continuously visited by one client, split when the client is idle for
// more than 30 minutes; image files requested within 10 seconds of an
// HTML file by the same client are folded into that HTML page view; and
// a client address is classified as a proxy when it issues more than a
// threshold number of requests in a day (browsers otherwise).
package session

import (
	"sort"
	"time"

	"pbppm/internal/trace"
)

// DefaultIdleTimeout is the paper's 30-minute session-splitting gap.
const DefaultIdleTimeout = 30 * time.Minute

// DefaultEmbedWindow is the paper's 10-second embedded-image window.
const DefaultEmbedWindow = 10 * time.Second

// DefaultProxyThreshold is the requests-per-day count above which an
// address is considered a proxy rather than a browser. (The paper's
// text reads "more than 1 per day" with a typeset digit lost; 100 is
// the conventional value and the one that separates the two populations
// in these traces.)
const DefaultProxyThreshold = 100

// Embedded is an image object folded into a page view.
type Embedded struct {
	URL   string
	Bytes int64
}

// PageView is one user click: a document plus the images embedded in it.
type PageView struct {
	URL   string
	Time  time.Time
	Bytes int64
	// Embedded lists image objects attached to this view by the
	// 10-second rule. Their bytes count toward the page's transfer
	// size but they are not independent prediction targets.
	Embedded []Embedded
}

// TotalBytes returns the page bytes plus all embedded object bytes.
func (v PageView) TotalBytes() int64 {
	n := v.Bytes
	for _, e := range v.Embedded {
		n += e.Bytes
	}
	return n
}

// Session is a maximal run of page views by one client with no idle gap
// exceeding the configured timeout.
type Session struct {
	Client string
	Views  []PageView
}

// Start returns the time of the first view; the zero time for an empty
// session.
func (s Session) Start() time.Time {
	if len(s.Views) == 0 {
		return time.Time{}
	}
	return s.Views[0].Time
}

// URLs returns the clicked URL sequence of the session.
func (s Session) URLs() []string {
	out := make([]string, len(s.Views))
	for i, v := range s.Views {
		out[i] = v.URL
	}
	return out
}

// Len returns the number of clicks (page views) in the session.
func (s Session) Len() int { return len(s.Views) }

// Config controls sessionization.
type Config struct {
	// IdleTimeout splits sessions; zero means DefaultIdleTimeout.
	IdleTimeout time.Duration
	// EmbedWindow folds images into the preceding HTML view; zero means
	// DefaultEmbedWindow. Negative disables folding entirely.
	EmbedWindow time.Duration
	// KeepStatuses limits which response codes contribute. Nil means
	// the default {200, 304}: successful and not-modified responses
	// both represent real user accesses.
	KeepStatuses map[int]bool
}

func (c Config) idle() time.Duration {
	if c.IdleTimeout == 0 {
		return DefaultIdleTimeout
	}
	return c.IdleTimeout
}

func (c Config) embed() time.Duration {
	if c.EmbedWindow == 0 {
		return DefaultEmbedWindow
	}
	return c.EmbedWindow
}

func (c Config) keep(status int) bool {
	if c.KeepStatuses == nil {
		return status == 200 || status == 304
	}
	return c.KeepStatuses[status]
}

// Sessionize converts a time-ordered trace into sessions. Sessions are
// returned sorted by start time (ties broken by client) so downstream
// processing is deterministic. Records with filtered-out statuses are
// dropped; image records are folded into the closest preceding HTML
// view of the same client within the embed window.
func Sessionize(tr *trace.Trace, cfg Config) []Session {
	type clientState struct {
		cur      *Session
		lastTime time.Time
		lastHTML time.Time // time of last HTML view, for folding
	}
	states := make(map[string]*clientState)
	var done []Session

	flush := func(st *clientState) {
		if st.cur != nil && len(st.cur.Views) > 0 {
			done = append(done, *st.cur)
		}
		st.cur = nil
	}

	for _, r := range tr.Records {
		if !cfg.keep(r.Status) {
			continue
		}
		st := states[r.Client]
		if st == nil {
			st = &clientState{}
			states[r.Client] = st
		}
		if st.cur != nil && r.Time.Sub(st.lastTime) > cfg.idle() {
			flush(st)
		}
		if st.cur == nil {
			st.cur = &Session{Client: r.Client}
			st.lastHTML = time.Time{}
		}
		st.lastTime = r.Time

		kind := r.Kind()
		if kind == trace.KindImage && cfg.EmbedWindow >= 0 &&
			!st.lastHTML.IsZero() && r.Time.Sub(st.lastHTML) <= cfg.embed() &&
			len(st.cur.Views) > 0 {
			last := &st.cur.Views[len(st.cur.Views)-1]
			last.Embedded = append(last.Embedded, Embedded{URL: r.URL, Bytes: r.Bytes})
			continue
		}

		st.cur.Views = append(st.cur.Views, PageView{URL: r.URL, Time: r.Time, Bytes: r.Bytes})
		if kind == trace.KindHTML {
			st.lastHTML = r.Time
		} else {
			// A non-HTML click resets the folding anchor: subsequent
			// images are no longer embedded in an earlier page.
			st.lastHTML = time.Time{}
		}
	}
	for _, st := range states {
		flush(st)
	}
	sort.SliceStable(done, func(i, j int) bool {
		si, sj := done[i].Start(), done[j].Start()
		if !si.Equal(sj) {
			return si.Before(sj)
		}
		return done[i].Client < done[j].Client
	})
	return done
}

// ClientClass distinguishes proxies from browsers.
type ClientClass int

const (
	// Browser is an end-user client with a small (1 MB) cache.
	Browser ClientClass = iota
	// Proxy is an aggregating cache server with a large (16 GB) cache.
	Proxy
)

// String returns the class name.
func (c ClientClass) String() string {
	if c == Proxy {
		return "proxy"
	}
	return "browser"
}

// ClassifyClients applies the paper's heuristic: an address whose
// request count exceeds threshold on any single day is a proxy.
// threshold <= 0 selects DefaultProxyThreshold.
func ClassifyClients(tr *trace.Trace, threshold int) map[string]ClientClass {
	if threshold <= 0 {
		threshold = DefaultProxyThreshold
	}
	type key struct {
		client string
		day    int
	}
	daily := make(map[key]int)
	for _, r := range tr.Records {
		daily[key{r.Client, r.Day(tr.Epoch)}]++
	}
	out := make(map[string]ClientClass)
	for _, r := range tr.Records {
		if _, seen := out[r.Client]; !seen {
			out[r.Client] = Browser
		}
	}
	for k, n := range daily {
		if n > threshold {
			out[k.client] = Proxy
		}
	}
	return out
}

// Stats summarizes a session set; used for validating that synthetic
// traces obey the paper's observed regularities.
type Stats struct {
	Sessions    int
	TotalClicks int
	MeanLength  float64
	MaxLength   int
	// LengthAtMost9 is the fraction of sessions with <= 9 clicks; the
	// paper reports this above 95%.
	LengthAtMost9 float64
}

// Summarize computes aggregate statistics over sessions.
func Summarize(sessions []Session) Stats {
	var st Stats
	st.Sessions = len(sessions)
	short := 0
	for _, s := range sessions {
		n := s.Len()
		st.TotalClicks += n
		if n > st.MaxLength {
			st.MaxLength = n
		}
		if n <= 9 {
			short++
		}
	}
	if st.Sessions > 0 {
		st.MeanLength = float64(st.TotalClicks) / float64(st.Sessions)
		st.LengthAtMost9 = float64(short) / float64(st.Sessions)
	}
	return st
}
