package session

import (
	"math/rand"
	"testing"
	"time"

	"pbppm/internal/trace"
)

var epoch = time.Date(1995, 7, 1, 0, 0, 0, 0, time.UTC)

func at(sec int) time.Time { return epoch.Add(time.Duration(sec) * time.Second) }

func rec(sec int, client, url string, bytes int64) trace.Record {
	return trace.Record{Client: client, Time: at(sec), Method: "GET", URL: url, Status: 200, Bytes: bytes}
}

func mktrace(recs ...trace.Record) *trace.Trace {
	tr := &trace.Trace{Epoch: epoch, Records: recs}
	tr.Sort()
	return tr
}

func TestSessionizeSingleSession(t *testing.T) {
	tr := mktrace(
		rec(0, "c", "/a.html", 100),
		rec(10, "c", "/b.html", 200),
		rec(20, "c", "/c.html", 300),
	)
	ss := Sessionize(tr, Config{})
	if len(ss) != 1 {
		t.Fatalf("got %d sessions, want 1", len(ss))
	}
	urls := ss[0].URLs()
	want := []string{"/a.html", "/b.html", "/c.html"}
	if len(urls) != 3 {
		t.Fatalf("urls = %v", urls)
	}
	for i := range want {
		if urls[i] != want[i] {
			t.Errorf("url[%d] = %s, want %s", i, urls[i], want[i])
		}
	}
	if ss[0].Client != "c" || !ss[0].Start().Equal(at(0)) || ss[0].Len() != 3 {
		t.Errorf("session meta = %+v", ss[0])
	}
}

func TestSessionizeIdleSplit(t *testing.T) {
	tr := mktrace(
		rec(0, "c", "/a.html", 1),
		rec(1800, "c", "/b.html", 1), // exactly 30 min: same session
		rec(3601, "c", "/c.html", 1), // 30m01s gap: new session
		rec(3602, "c", "/d.html", 1),
	)
	ss := Sessionize(tr, Config{})
	if len(ss) != 2 {
		t.Fatalf("got %d sessions, want 2: %+v", len(ss), ss)
	}
	if ss[0].Len() != 2 || ss[1].Len() != 2 {
		t.Errorf("session lengths = %d, %d, want 2, 2", ss[0].Len(), ss[1].Len())
	}
}

func TestSessionizeCustomIdle(t *testing.T) {
	tr := mktrace(
		rec(0, "c", "/a.html", 1),
		rec(61, "c", "/b.html", 1),
	)
	ss := Sessionize(tr, Config{IdleTimeout: time.Minute})
	if len(ss) != 2 {
		t.Fatalf("got %d sessions, want 2", len(ss))
	}
}

func TestSessionizePerClient(t *testing.T) {
	tr := mktrace(
		rec(0, "a", "/1.html", 1),
		rec(1, "b", "/2.html", 1),
		rec(2, "a", "/3.html", 1),
		rec(3, "b", "/4.html", 1),
	)
	ss := Sessionize(tr, Config{})
	if len(ss) != 2 {
		t.Fatalf("got %d sessions, want 2", len(ss))
	}
	// Sorted by start time: client a first.
	if ss[0].Client != "a" || ss[1].Client != "b" {
		t.Errorf("clients = %s, %s", ss[0].Client, ss[1].Client)
	}
	if ss[0].URLs()[1] != "/3.html" || ss[1].URLs()[1] != "/4.html" {
		t.Error("per-client interleaving broken")
	}
}

func TestEmbeddedFolding(t *testing.T) {
	tr := mktrace(
		rec(0, "c", "/page.html", 1000),
		rec(3, "c", "/img/a.gif", 50),
		rec(9, "c", "/img/b.jpg", 60),
		rec(12, "c", "/img/late.gif", 70), // 12s after HTML: its own view
	)
	ss := Sessionize(tr, Config{})
	if len(ss) != 1 {
		t.Fatalf("got %d sessions", len(ss))
	}
	views := ss[0].Views
	if len(views) != 2 {
		t.Fatalf("got %d views, want 2 (folded page + late image): %+v", len(views), views)
	}
	if len(views[0].Embedded) != 2 {
		t.Fatalf("embedded = %+v, want 2 objects", views[0].Embedded)
	}
	if views[0].TotalBytes() != 1000+50+60 {
		t.Errorf("TotalBytes = %d, want 1110", views[0].TotalBytes())
	}
	if views[1].URL != "/img/late.gif" {
		t.Errorf("second view = %s", views[1].URL)
	}
}

func TestEmbeddedFoldingAnchorReset(t *testing.T) {
	// An intervening non-HTML click breaks the folding anchor.
	tr := mktrace(
		rec(0, "c", "/page.html", 1000),
		rec(2, "c", "/download.zip", 5000),
		rec(4, "c", "/img/a.gif", 50),
	)
	ss := Sessionize(tr, Config{})
	if len(ss[0].Views) != 3 {
		t.Fatalf("views = %+v, want 3 (no folding across the zip)", ss[0].Views)
	}
}

func TestEmbeddedFoldingDisabled(t *testing.T) {
	tr := mktrace(
		rec(0, "c", "/page.html", 1000),
		rec(1, "c", "/img/a.gif", 50),
	)
	ss := Sessionize(tr, Config{EmbedWindow: -1})
	if len(ss[0].Views) != 2 {
		t.Fatalf("views = %d, want 2 with folding disabled", len(ss[0].Views))
	}
}

func TestStatusFiltering(t *testing.T) {
	r404 := rec(1, "c", "/missing.html", 0)
	r404.Status = 404
	r304 := rec(2, "c", "/cached.html", 0)
	r304.Status = 304
	tr := mktrace(rec(0, "c", "/a.html", 1), r404, r304)
	ss := Sessionize(tr, Config{})
	if len(ss) != 1 || ss[0].Len() != 2 {
		t.Fatalf("sessions = %+v, want one session of 2 views (404 dropped, 304 kept)", ss)
	}
	// Custom status set.
	ss = Sessionize(tr, Config{KeepStatuses: map[int]bool{200: true}})
	if ss[0].Len() != 1 {
		t.Errorf("custom status filter kept %d views, want 1", ss[0].Len())
	}
}

func TestSessionizeEmptyTrace(t *testing.T) {
	if got := Sessionize(&trace.Trace{Epoch: epoch}, Config{}); len(got) != 0 {
		t.Errorf("empty trace produced %d sessions", len(got))
	}
}

func TestClassifyClients(t *testing.T) {
	var recs []trace.Record
	// "heavy" makes 150 requests on day 0; "light" makes 5/day on two days.
	for i := 0; i < 150; i++ {
		recs = append(recs, rec(i, "heavy", "/x.html", 1))
	}
	for d := 0; d < 2; d++ {
		for i := 0; i < 5; i++ {
			recs = append(recs, rec(d*86400+i, "light", "/y.html", 1))
		}
	}
	tr := mktrace(recs...)
	classes := ClassifyClients(tr, 0)
	if classes["heavy"] != Proxy {
		t.Errorf("heavy = %v, want proxy", classes["heavy"])
	}
	if classes["light"] != Browser {
		t.Errorf("light = %v, want browser", classes["light"])
	}
	// Lower threshold flips the light client too.
	classes = ClassifyClients(tr, 4)
	if classes["light"] != Proxy {
		t.Errorf("light with threshold 4 = %v, want proxy", classes["light"])
	}
}

func TestClassString(t *testing.T) {
	if Browser.String() != "browser" || Proxy.String() != "proxy" {
		t.Error("ClientClass.String mismatch")
	}
}

func TestSummarize(t *testing.T) {
	mk := func(n int) Session {
		s := Session{Client: "c"}
		for i := 0; i < n; i++ {
			s.Views = append(s.Views, PageView{URL: "/x", Time: at(i)})
		}
		return s
	}
	st := Summarize([]Session{mk(1), mk(3), mk(12)})
	if st.Sessions != 3 || st.TotalClicks != 16 || st.MaxLength != 12 {
		t.Errorf("stats = %+v", st)
	}
	if st.MeanLength < 5.3 || st.MeanLength > 5.4 {
		t.Errorf("mean = %v", st.MeanLength)
	}
	if st.LengthAtMost9 < 0.66 || st.LengthAtMost9 > 0.67 {
		t.Errorf("LengthAtMost9 = %v", st.LengthAtMost9)
	}
	if got := Summarize(nil); got.Sessions != 0 || got.MeanLength != 0 {
		t.Errorf("empty summarize = %+v", got)
	}
}

func TestSessionStartEmpty(t *testing.T) {
	var s Session
	if !s.Start().IsZero() {
		t.Error("empty session Start not zero")
	}
}

// Property: no session contains an inter-view gap exceeding the idle
// timeout, across random traces.
func TestNoIntraSessionGapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var recs []trace.Record
	clients := []string{"a", "b", "c"}
	tm := 0
	for i := 0; i < 2000; i++ {
		tm += rng.Intn(2400) // gaps up to 40 min
		recs = append(recs, rec(tm, clients[rng.Intn(len(clients))],
			"/p"+string(rune('a'+rng.Intn(20)))+".html", 1))
	}
	tr := mktrace(recs...)
	for _, s := range Sessionize(tr, Config{}) {
		for i := 1; i < len(s.Views); i++ {
			if gap := s.Views[i].Time.Sub(s.Views[i-1].Time); gap > DefaultIdleTimeout {
				t.Fatalf("session %s contains a %v gap", s.Client, gap)
			}
		}
	}
}

// Property: sessionization conserves records — every kept record lands
// in exactly one session, as a view or an embedded object.
func TestSessionizeConservesRecordsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	var recs []trace.Record
	tm := 0
	for i := 0; i < 1500; i++ {
		tm += rng.Intn(60)
		url := "/page" + string(rune('a'+rng.Intn(10))) + ".html"
		if rng.Intn(3) == 0 {
			url = "/img" + string(rune('a'+rng.Intn(10))) + ".gif"
		}
		recs = append(recs, rec(tm, "c"+string(rune('0'+rng.Intn(4))), url, 1))
	}
	tr := mktrace(recs...)
	views, embedded := 0, 0
	for _, s := range Sessionize(tr, Config{}) {
		views += len(s.Views)
		for _, v := range s.Views {
			embedded += len(v.Embedded)
		}
	}
	if views+embedded != len(recs) {
		t.Errorf("records %d != views %d + embedded %d", len(recs), views, embedded)
	}
}

// TestIdleSplitExactBoundary pins the paper's "idle for more than 30
// minutes" rule at exact equality: a gap of exactly the idle timeout
// stays in one session; one second more splits.
func TestIdleSplitExactBoundary(t *testing.T) {
	gap := int(DefaultIdleTimeout / time.Second)
	same := Sessionize(mktrace(
		rec(0, "c", "/a.html", 1),
		rec(gap, "c", "/b.html", 1),
	), Config{})
	if len(same) != 1 {
		t.Errorf("exact %v gap split the session: %d sessions", DefaultIdleTimeout, len(same))
	}
	split := Sessionize(mktrace(
		rec(0, "c", "/a.html", 1),
		rec(gap+1, "c", "/b.html", 1),
	), Config{})
	if len(split) != 2 {
		t.Errorf("gap of %v+1s did not split: %d sessions", DefaultIdleTimeout, len(split))
	}
}

// TestEmbedWindowExactBoundary pins the 10-second embedded-image rule
// at exact equality: an image exactly DefaultEmbedWindow after the HTML
// view folds into it; one second more is its own page view.
func TestEmbedWindowExactBoundary(t *testing.T) {
	win := int(DefaultEmbedWindow / time.Second)
	folded := Sessionize(mktrace(
		rec(0, "c", "/page.html", 1000),
		rec(win, "c", "/img/a.gif", 50),
	), Config{})
	if got := len(folded[0].Views); got != 1 {
		t.Errorf("image at exactly %v was not folded: %d views", DefaultEmbedWindow, got)
	}
	own := Sessionize(mktrace(
		rec(0, "c", "/page.html", 1000),
		rec(win+1, "c", "/img/a.gif", 50),
	), Config{})
	if got := len(own[0].Views); got != 2 {
		t.Errorf("image at %v+1s was folded: %d views", DefaultEmbedWindow, got)
	}
}
