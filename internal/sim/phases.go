package sim

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pbppm/internal/obs"
)

// The named phases of an offline experiment run. A slow reproduction
// should say *where* it was slow: building the synthetic workload,
// training the models, replaying the test window, or rendering the
// report.
const (
	PhaseWorkloadBuild = "workload_build"
	PhaseTrain         = "train"
	PhaseSimulate      = "simulate"
	PhaseReport        = "report"
)

// PhaseBounds are histogram bucket bounds for offline phase durations:
// experiment phases run from tens of milliseconds (small-scale smoke
// runs) to minutes (full-scale sweeps), far beyond the request-latency
// bounds the online path uses.
var PhaseBounds = []time.Duration{
	10 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
	500 * time.Millisecond, 1 * time.Second, 5 * time.Second,
	10 * time.Second, 30 * time.Second, 1 * time.Minute,
	5 * time.Minute, 10 * time.Minute,
}

// PhaseClock accumulates wall time per named phase of an experiment
// run and counts replayed events, mirroring every measurement into an
// obs histogram family (pbppm_experiment_phase_seconds) when built
// over a registry. One clock scopes one experiment: cmd/reproduce
// creates a fresh clock per figure so phase totals do not bleed
// between records.
//
// All methods are safe on a nil *PhaseClock (they do nothing), so
// instrumented code needs no "is timing on?" branches — the same
// contract the obs constructors follow. A non-nil clock is safe for
// concurrent use.
type PhaseClock struct {
	reg *obs.Registry // may be nil: totals only, no exported histograms

	mu     sync.Mutex
	totals map[string]time.Duration
	events atomic.Int64
}

// NewPhaseClock returns a clock; reg may be nil to keep timings
// process-local instead of exporting them as histograms.
func NewPhaseClock(reg *obs.Registry) *PhaseClock {
	return &PhaseClock{reg: reg, totals: make(map[string]time.Duration)}
}

// Observe adds one measured duration to a phase.
func (c *PhaseClock) Observe(phase string, d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.totals[phase] += d
	c.mu.Unlock()
	if c.reg != nil {
		c.reg.Histogram("pbppm_experiment_phase_seconds",
			"Wall time of offline experiment phases (workload_build, train, simulate, report).",
			PhaseBounds, obs.Label{Name: "phase", Value: phase}).Observe(d)
	}
}

// Start begins timing a phase and returns the function that stops the
// measurement and records it.
func (c *PhaseClock) Start(phase string) (stop func()) {
	if c == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { c.Observe(phase, time.Since(t0)) }
}

// Time measures f under the named phase.
func (c *PhaseClock) Time(phase string, f func()) {
	defer c.Start(phase)()
	f()
}

// AddEvents counts replayed page views toward the clock's event total;
// Run calls it once per replay.
func (c *PhaseClock) AddEvents(n int64) {
	if c != nil {
		c.events.Add(n)
	}
}

// Events returns the accumulated event count.
func (c *PhaseClock) Events() int64 {
	if c == nil {
		return 0
	}
	return c.events.Load()
}

// Total returns the accumulated wall time of one phase.
func (c *PhaseClock) Total(phase string) time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totals[phase]
}

// Totals returns a copy of all phase totals.
func (c *PhaseClock) Totals() map[string]time.Duration {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]time.Duration, len(c.totals))
	for k, v := range c.totals {
		out[k] = v
	}
	return out
}

// String renders the totals compactly ("train 1.2s, simulate 3.4s"),
// phases sorted by name, for progress logs.
func (c *PhaseClock) String() string {
	totals := c.Totals()
	phases := make([]string, 0, len(totals))
	for p := range totals {
		phases = append(phases, p)
	}
	sort.Strings(phases)
	var sb strings.Builder
	for i, p := range phases {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p)
		sb.WriteByte(' ')
		sb.WriteString(totals[p].Round(time.Millisecond).String())
	}
	return sb.String()
}
