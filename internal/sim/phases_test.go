package sim

import (
	"strings"
	"testing"
	"time"

	"pbppm/internal/obs"
	"pbppm/internal/session"
)

func TestPhaseClockAccumulates(t *testing.T) {
	c := NewPhaseClock(nil)
	c.Observe(PhaseTrain, 100*time.Millisecond)
	c.Observe(PhaseTrain, 50*time.Millisecond)
	c.Observe(PhaseSimulate, 10*time.Millisecond)
	c.AddEvents(7)

	if got := c.Total(PhaseTrain); got != 150*time.Millisecond {
		t.Errorf("Total(train) = %v, want 150ms", got)
	}
	if got := c.Events(); got != 7 {
		t.Errorf("Events = %d, want 7", got)
	}
	totals := c.Totals()
	if len(totals) != 2 {
		t.Errorf("Totals has %d phases, want 2: %v", len(totals), totals)
	}
	s := c.String()
	if !strings.Contains(s, PhaseTrain) || !strings.Contains(s, PhaseSimulate) {
		t.Errorf("String() = %q missing phase names", s)
	}
}

func TestPhaseClockNilSafe(t *testing.T) {
	var c *PhaseClock
	c.Observe(PhaseTrain, time.Second)
	c.Time(PhaseReport, func() {})
	c.Start(PhaseSimulate)()
	c.AddEvents(3)
	if c.Events() != 0 || c.Total(PhaseTrain) != 0 || c.Totals() != nil {
		t.Error("nil PhaseClock recorded something")
	}
}

// TestPhaseClockExportsHistograms: a registry-backed clock mirrors
// observations into the pbppm_experiment_phase_seconds family.
func TestPhaseClockExportsHistograms(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewPhaseClock(reg)
	c.Observe(PhaseSimulate, 42*time.Millisecond)
	c.Observe(PhaseSimulate, 7*time.Second)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `pbppm_experiment_phase_seconds_count{phase="simulate"} 2`) {
		t.Errorf("exposition missing phase histogram count:\n%s", out)
	}
}

// TestRunRecordsSimulatePhase: Run must charge the replay to
// PhaseSimulate, count its events, and stamp Progress.Phase.
func TestRunRecordsSimulatePhase(t *testing.T) {
	sizes := map[string]int64{"/a": 1000, "/b": 1000}
	test := []session.Session{mkSession("c1", 0, sizes, "/a", "/b")}

	clock := NewPhaseClock(nil)
	var phases []string
	Run(test, Options{
		Sizes:         sizes,
		Phases:        clock,
		ProgressEvery: 1,
		OnProgress:    func(p Progress) { phases = append(phases, p.Phase) },
	})

	if clock.Events() != 2 {
		t.Errorf("Events = %d, want 2", clock.Events())
	}
	if clock.Total(PhaseSimulate) <= 0 {
		t.Errorf("Total(simulate) = %v, want > 0", clock.Total(PhaseSimulate))
	}
	for _, p := range phases {
		if p != PhaseSimulate {
			t.Errorf("Progress.Phase = %q, want %q", p, PhaseSimulate)
		}
	}
}
