package sim

import (
	"testing"

	"pbppm/internal/session"
)

// TestProgressReporting replays a small workload with a tight progress
// interval and checks the callback cadence and the final snapshot.
func TestProgressReporting(t *testing.T) {
	sizes := map[string]int64{"/a": 1000, "/b": 1000, "/c": 1000}
	test := []session.Session{
		mkSession("c1", 0, sizes, "/a", "/b", "/c"),
		mkSession("c2", 100, sizes, "/a", "/b"),
	}

	var snaps []Progress
	Run(test, Options{
		Sizes:         sizes,
		ProgressEvery: 2,
		OnProgress:    func(p Progress) { snaps = append(snaps, p) },
	})

	// 5 events, every 2 → at 2, 4, and the final report at 5.
	if len(snaps) != 3 {
		t.Fatalf("got %d progress snapshots, want 3: %+v", len(snaps), snaps)
	}
	if snaps[0].Events != 2 || snaps[1].Events != 4 || snaps[2].Events != 5 {
		t.Errorf("snapshot events = %d,%d,%d, want 2,4,5",
			snaps[0].Events, snaps[1].Events, snaps[2].Events)
	}
	final := snaps[len(snaps)-1]
	if final.TotalEvents != 5 {
		t.Errorf("TotalEvents = %d, want 5", final.TotalEvents)
	}
	if final.HitRatio < 0 || final.HitRatio > 1 {
		t.Errorf("HitRatio = %v out of range", final.HitRatio)
	}
	if final.EventsPerSec <= 0 {
		t.Errorf("EventsPerSec = %v, want > 0", final.EventsPerSec)
	}
}

// TestProgressDisabledByDefault makes sure a nil OnProgress costs
// nothing and changes nothing.
func TestProgressDisabledByDefault(t *testing.T) {
	sizes := map[string]int64{"/a": 1000}
	test := []session.Session{mkSession("c1", 0, sizes, "/a")}
	res := Run(test, Options{Sizes: sizes})
	if res.Requests != 1 {
		t.Errorf("Requests = %d, want 1", res.Requests)
	}
}

// TestProgressNoEvents: an empty replay must not emit a final report.
func TestProgressNoEvents(t *testing.T) {
	called := false
	Run(nil, Options{OnProgress: func(Progress) { called = true }})
	if called {
		t.Error("OnProgress called for an empty replay")
	}
}
