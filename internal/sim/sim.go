// Package sim implements the paper's trace-driven simulation
// environment (§2.2): a Web server holding a prediction model, clients
// with 1 MB LRU browser caches, optionally a proxy tier with a 16 GB
// LRU cache, and prefetch decisioning with the paper's probability and
// size thresholds. A run replays test-window sessions in time order,
// serving each page view from the nearest cache or the server, pushing
// prefetched documents alongside responses, and accumulating the four
// §2.3 metrics.
//
// Prefetched documents ride along with responses ("sending both
// requested and prefetched data to the targeted clients"), so
// predictions fire only for requests that actually reach the server —
// browser and proxy cache hits are invisible to it. The server keeps a
// per-session context of the requests it has seen and matches as many
// previous URLs as possible, the paper's longest-matching method.
package sim

import (
	"fmt"
	"sort"
	"time"

	"pbppm/internal/cache"
	"pbppm/internal/latency"
	"pbppm/internal/markov"
	"pbppm/internal/metrics"
	"pbppm/internal/popularity"
	"pbppm/internal/quality"
	"pbppm/internal/session"
)

// DefaultMaxPrefetchBytes is the paper's size threshold for the
// standard and LRS models (10 KB); PBMaxPrefetchBytes is the 30 KB
// threshold used for PB-PPM in the client–server experiments.
const (
	DefaultMaxPrefetchBytes = 10 * 1024
	PBMaxPrefetchBytes      = 30 * 1024
)

// Optimizer is implemented by models with a post-build space
// optimization pass (PB-PPM).
type Optimizer interface {
	Optimize() int
}

// Options configures a simulation run.
type Options struct {
	// Predictor is the trained prediction model; nil runs the
	// no-prefetch baseline.
	Predictor markov.Predictor
	// MaxPrefetchBytes drops prefetch candidates larger than this
	// (documents measured with embedded objects). Zero selects
	// DefaultMaxPrefetchBytes.
	MaxPrefetchBytes int64
	// Path supplies the latency models; the zero value selects
	// latency.DefaultPath().
	Path latency.Path
	// BrowserCacheBytes sizes each client's browser cache; zero selects
	// the paper's 1 MB.
	BrowserCacheBytes int64
	// UseProxy interposes a shared proxy cache between the clients and
	// the server (the §5 experiment); prefetched documents are then
	// pushed to the proxy, not the browsers.
	UseProxy bool
	// ProxyCacheBytes sizes the proxy cache; zero selects 16 GB.
	ProxyCacheBytes int64
	// Grades classifies documents for the popular-prefetch-hit metric;
	// nil disables that metric. Popular means grade >= PopularMinGrade.
	Grades popularity.Grader
	// PopularMinGrade defaults to 2.
	PopularMinGrade popularity.Grade
	// OnlineTraining feeds each completed test session back into the
	// model, emulating a continuously maintained server model.
	OnlineTraining bool
	// PredictOnHitToo makes every demand click visible to the server
	// (as if clients revalidated every cached copy), so predictions
	// also fire on cache hits. The default (false) is the paper's
	// piggyback architecture: only requests that reach the server
	// trigger prefetch pushes.
	PredictOnHitToo bool
	// CachePolicy selects the replacement policy for browser and proxy
	// caches: PolicyLRU (the paper's §2.2 default) or PolicyGDSF (the
	// popularity-aware policy of the paper's reference [16]).
	CachePolicy CachePolicy
	// Sizes maps URL to document size (with embedded objects). If nil,
	// the table is built from the test sessions themselves; supplying
	// one built from the training window too avoids zero-size prefetch
	// estimates for unseen documents.
	Sizes map[string]int64
	// OnProgress, if set, receives a Progress snapshot every
	// ProgressEvery replayed page views and once more when the replay
	// ends, so long trace replays are no longer opaque. It is called
	// synchronously from the replay loop and must be cheap.
	OnProgress func(Progress)
	// ProgressEvery is the page-view interval between OnProgress calls;
	// zero selects 50000.
	ProgressEvery int
	// Phases, if set, receives the replay's wall time under
	// PhaseSimulate and its event count; Compare additionally records
	// each model's training time under PhaseTrain. Nil disables phase
	// timing.
	Phases *PhaseClock
}

// Progress is a snapshot of a running replay, delivered to
// Options.OnProgress.
type Progress struct {
	// Phase names the run phase the snapshot belongs to (always
	// PhaseSimulate from Run's replay loop; harnesses layering their
	// own phases may report others).
	Phase string
	// Events is the number of page views replayed so far; TotalEvents
	// the number the replay will process.
	Events      int64
	TotalEvents int64
	// HitRatio is the partial hit ratio over the events replayed so far.
	HitRatio float64
	// PrefetchHits is the partial prefetch-hit count.
	PrefetchHits int64
	// Elapsed is wall-clock time since the replay started; EventsPerSec
	// the replay throughput over that span.
	Elapsed      time.Duration
	EventsPerSec float64
}

func (o Options) maxPrefetch() int64 {
	if o.MaxPrefetchBytes == 0 {
		return DefaultMaxPrefetchBytes
	}
	return o.MaxPrefetchBytes
}

func (o Options) path() latency.Path {
	if o.Path == (latency.Path{}) {
		return latency.DefaultPath()
	}
	return o.Path
}

func (o Options) browserBytes() int64 {
	if o.BrowserCacheBytes == 0 {
		return cache.DefaultBrowserCapacity
	}
	return o.BrowserCacheBytes
}

func (o Options) proxyBytes() int64 {
	if o.ProxyCacheBytes == 0 {
		return cache.DefaultProxyCapacity
	}
	return o.ProxyCacheBytes
}

// CachePolicy names a cache replacement policy.
type CachePolicy int

const (
	// PolicyLRU is the paper's replacement policy.
	PolicyLRU CachePolicy = iota
	// PolicyGDSF is popularity-aware GreedyDual-Size-Frequency.
	PolicyGDSF
)

// String returns the policy name.
func (p CachePolicy) String() string {
	if p == PolicyGDSF {
		return "gdsf"
	}
	return "lru"
}

// newCache builds a cache of the configured policy.
func (o Options) newCache(capacity int64) cache.Policy {
	if o.CachePolicy == PolicyGDSF {
		return cache.NewGDSF(capacity)
	}
	return cache.NewLRU(capacity)
}

func (o Options) progressEvery() int {
	if o.ProgressEvery <= 0 {
		return 50000
	}
	return o.ProgressEvery
}

func (o Options) popularMin() popularity.Grade {
	if o.PopularMinGrade == 0 {
		return 2
	}
	return o.PopularMinGrade
}

// URLSequences extracts the clicked URL sequences from sessions — the
// training food for every model.
func URLSequences(sessions []session.Session) [][]string {
	out := make([][]string, len(sessions))
	for i, s := range sessions {
		out[i] = s.URLs()
	}
	return out
}

// BuildSizeTable returns the largest observed transfer size (page plus
// embedded objects) per URL.
func BuildSizeTable(sessionSets ...[]session.Session) map[string]int64 {
	sizes := make(map[string]int64)
	for _, set := range sessionSets {
		for _, s := range set {
			for _, v := range s.Views {
				if tb := v.TotalBytes(); tb > sizes[v.URL] {
					sizes[v.URL] = tb
				}
			}
		}
	}
	return sizes
}

// Train folds the training sessions into the predictor — sharded
// across CPUs when the model supports it — and runs its space
// optimization if it has one. It returns the node count after training,
// for convenience.
func Train(p markov.Predictor, train []session.Session) int {
	markov.TrainAllParallel(p, URLSequences(train))
	if opt, ok := p.(Optimizer); ok {
		opt.Optimize()
	}
	if ur, ok := p.(markov.UtilizationReporter); ok {
		ur.ResetUsage()
	}
	return p.NodeCount()
}

// event is one page view scheduled for replay.
type event struct {
	t       time.Time
	client  string
	session int // index into the session list
	view    int // index into the session's views
}

// Run replays the test sessions against the configured topology and
// returns the accumulated metrics. The supplied predictor must already
// be trained (see Train).
func Run(test []session.Session, opt Options) metrics.Result {
	res := metrics.Result{Model: "none"}
	if opt.Predictor != nil {
		res.Model = opt.Predictor.Name()
	}
	sizes := opt.Sizes
	if sizes == nil {
		sizes = BuildSizeTable(test)
	}
	path := opt.path()
	maxPf := opt.maxPrefetch()

	// Replay strictly in time order across sessions so cache contents
	// evolve exactly as the interleaved trace dictates.
	var events []event
	for si, s := range test {
		for vi, v := range s.Views {
			events = append(events, event{t: v.Time, client: s.Client, session: si, view: vi})
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if !events[i].t.Equal(events[j].t) {
			return events[i].t.Before(events[j].t)
		}
		if events[i].client != events[j].client {
			return events[i].client < events[j].client
		}
		return events[i].session < events[j].session ||
			(events[i].session == events[j].session && events[i].view < events[j].view)
	})

	browsers := make(map[string]cache.Policy)
	browserFor := func(client string) cache.Policy {
		b := browsers[client]
		if b == nil {
			b = opt.newCache(opt.browserBytes())
			browsers[client] = b
		}
		return b
	}
	var proxy cache.Policy
	if opt.UseProxy {
		proxy = opt.newCache(opt.proxyBytes())
	}

	// contexts tracks each in-flight session's clicked URLs so far.
	contexts := make(map[int][]string, len(test))

	// All §2.3 quality accounting flows through a quality.Scorer — the
	// same implementation the live server scores its hint lifecycle
	// with — so offline and online metrics cannot drift apart.
	score := quality.NewScorer()

	replayStart := time.Now()
	every := opt.progressEvery()
	report := func(done int64) {
		elapsed := time.Since(replayStart)
		part := score.Total()
		p := Progress{
			Phase:        PhaseSimulate,
			Events:       done,
			TotalEvents:  int64(len(events)),
			HitRatio:     part.HitRatio(),
			PrefetchHits: part.PrefetchHits,
			Elapsed:      elapsed,
		}
		if secs := elapsed.Seconds(); secs > 0 {
			p.EventsPerSec = float64(done) / secs
		}
		opt.OnProgress(p)
	}

	// One prediction scratch buffer is reused for the whole replay: the
	// markov.BufferedPredictor contract guarantees predictions are
	// consumed before the next call overwrites them, so an arena-frozen
	// model runs the entire event loop without per-event allocations.
	var predBuf []markov.Prediction

	for evIdx, ev := range events {
		v := test[ev.session].Views[ev.view]
		size := v.TotalBytes()
		outcome := quality.Miss

		browser := browserFor(ev.client)
		served := false

		if ok, prefetched := browser.Get(v.URL); ok {
			served = true
			res.BrowserHits++
			if prefetched {
				outcome = quality.PrefetchHit
				if opt.Grades != nil && opt.Grades.GradeOf(v.URL) >= opt.popularMin() {
					res.PrefetchHitsPopular++
				}
				browser.MarkDemand(v.URL)
			} else {
				outcome = quality.CacheHit
			}
			// Local hit: negligible latency.
			res.Latencies.Observe(0)
		}

		if !served && proxy != nil {
			if ok, prefetched := proxy.Get(v.URL); ok {
				served = true
				if prefetched {
					outcome = quality.PrefetchHit
					res.ProxyPrefetchHits++
					if opt.Grades != nil && opt.Grades.GradeOf(v.URL) >= opt.popularMin() {
						res.PrefetchHitsPopular++
					}
					proxy.MarkDemand(v.URL)
				} else {
					outcome = quality.CacheHit
					res.ProxyCacheHits++
				}
				hitLat := path.ProxyHit(size)
				res.TotalLatency += hitLat
				res.Latencies.Observe(hitLat)
				browser.Put(v.URL, size, false)
			}
		}

		if !served {
			// Fetch from the server.
			var missLat time.Duration
			if proxy != nil {
				missLat = path.ProxyMiss(size)
				proxy.Put(v.URL, size, false)
			} else {
				missLat = path.DirectFetch(size)
			}
			res.TotalLatency += missLat
			res.Latencies.Observe(missLat)
			browser.Put(v.URL, size, false)
		}
		score.Demand(size, outcome)

		// The server's view of the session: requests that reached it.
		// Cache hits stay invisible unless PredictOnHitToo is set.
		reachedServer := !served || opt.PredictOnHitToo
		var ctx []string
		if reachedServer {
			ctx = append(contexts[ev.session], v.URL)
			contexts[ev.session] = ctx
		} else {
			ctx = contexts[ev.session]
		}
		if ev.view == len(test[ev.session].Views)-1 {
			delete(contexts, ev.session)
			if opt.OnlineTraining && opt.Predictor != nil {
				opt.Predictor.TrainSequence(test[ev.session].URLs())
			}
		}
		if opt.Predictor != nil && reachedServer && len(ctx) > 0 {
			predBuf = markov.PredictInto(opt.Predictor, ctx, predBuf)
			for _, p := range predBuf {
				psize, known := sizes[p.URL]
				if !known || psize > maxPf {
					continue
				}
				if proxy != nil {
					// §5: the server pushes predicted documents to the proxy.
					if proxy.Contains(p.URL) {
						continue
					}
					proxy.Put(p.URL, psize, true)
				} else {
					if browser.Contains(p.URL) {
						continue
					}
					browser.Put(p.URL, psize, true)
				}
				score.Prefetched(psize)
			}
		}
		if opt.OnProgress != nil && (evIdx+1)%every == 0 {
			report(int64(evIdx + 1))
		}
	}
	if opt.OnProgress != nil && len(events) > 0 {
		report(int64(len(events)))
	}
	opt.Phases.Observe(PhaseSimulate, time.Since(replayStart))
	opt.Phases.AddEvents(int64(len(events)))

	// Fold the scorer's totals into the result; the integer accounting
	// is identical to the pre-scorer implementation by construction.
	total := score.Total()
	res.Requests = total.Requests
	res.CacheHits = total.CacheHits
	res.PrefetchHits = total.PrefetchHits
	res.PrefetchedDocs = total.PrefetchedDocs
	res.TransferredBytes = total.TransferredBytes
	res.UsefulBytes = total.UsefulBytes
	res.PrefetchedBytes = total.PrefetchedBytes

	res.Nodes = 0
	if opt.Predictor != nil {
		res.Nodes = opt.Predictor.NodeCount()
		if ur, ok := opt.Predictor.(markov.UtilizationReporter); ok {
			res.Utilization = ur.Utilization()
		}
	}
	return res
}

// Compare trains each predictor on the training window, runs it on the
// test window with per-model options, and also runs the no-prefetch
// baseline. It is the workhorse the experiment harness builds on.
func Compare(train, test []session.Session, runs []NamedRun) []metrics.Result {
	results := make([]metrics.Result, 0, len(runs)+1)
	sizes := BuildSizeTable(train, test)

	base := runs[0].Options
	base.Predictor = nil
	base.Sizes = sizes
	baseline := Run(test, base)
	baseline.Model = "none"
	results = append(results, baseline)

	for _, r := range runs {
		opts := r.Options
		opts.Sizes = sizes
		opts.Phases.Time(PhaseTrain, func() { Train(opts.Predictor, train) })
		res := Run(test, opts)
		if r.Name != "" {
			res.Model = r.Name
		}
		results = append(results, res)
	}
	return results
}

// NamedRun pairs a configured run with an optional display name
// override (e.g. "PB-PPM-4KB").
type NamedRun struct {
	Name    string
	Options Options
}

// FitPathFromTrace fits the client-server latency model from synthetic
// measured samples derived from the observed document sizes, mirroring
// the paper's least-squares methodology, and returns a Path whose proxy
// legs are scaled from the fit. seed makes the sample noise
// reproducible.
func FitPathFromTrace(sizes map[string]int64, seed int64) (latency.Path, error) {
	truth := latency.DefaultPath()
	samples := latency.SyntheticSamples(truth.ClientServer, sizes, seed)
	fitted, err := latency.Fit(samples)
	if err != nil {
		return latency.Path{}, fmt.Errorf("sim: fitting latency model: %w", err)
	}
	p := latency.Path{
		ClientServer: fitted,
		ClientProxy: latency.Model{
			Connect:      fitted.Connect / 10,
			TransferRate: fitted.TransferRate / 10,
		},
		ProxyServer: latency.Model{
			Connect:      fitted.Connect * 5 / 6,
			TransferRate: fitted.TransferRate * 5 / 6,
		},
	}
	return p, nil
}
