package sim

import (
	"math/rand"
	"testing"
	"time"

	"pbppm/internal/core"
	"pbppm/internal/latency"
	"pbppm/internal/lrs"
	"pbppm/internal/markov"
	"pbppm/internal/popularity"
	"pbppm/internal/ppm"
	"pbppm/internal/session"
)

// randomSessions builds a reproducible batch of sessions over a small
// URL universe with a planted hot path.
func randomSessions(seed int64, n int, startSec int) []session.Session {
	rng := rand.New(rand.NewSource(seed))
	urls := []string{"/a", "/b", "/c", "/d", "/e", "/f"}
	var out []session.Session
	for i := 0; i < n; i++ {
		client := "c" + string(rune('0'+rng.Intn(8)))
		s := session.Session{Client: client}
		var seq []string
		if rng.Float64() < 0.6 {
			seq = []string{"/a", "/b", "/c"} // hot path
		} else {
			m := rng.Intn(4) + 1
			seq = make([]string, m)
			for j := range seq {
				seq[j] = urls[rng.Intn(len(urls))]
			}
		}
		base := startSec + i*3600
		for j, u := range seq {
			s.Views = append(s.Views, session.PageView{
				URL: u, Time: at(base + j*15), Bytes: int64(1000 + 100*j),
			})
		}
		out = append(out, s)
	}
	return out
}

// TestInvariantsAcrossModels replays the same workload through all
// three real models plus the baseline and checks cross-cutting
// accounting invariants.
func TestInvariantsAcrossModels(t *testing.T) {
	train := randomSessions(1, 200, 0)
	test := randomSessions(2, 80, 1_000_000)
	sizeTable := BuildSizeTable(train, test)
	rank := popularity.NewRanking()
	for _, s := range train {
		for _, u := range s.URLs() {
			rank.Observe(u, 1)
		}
	}

	preds := []markov.Predictor{
		nil,
		ppm.New(ppm.Config{}),
		ppm.New(ppm.Config{Height: 3}),
		lrs.New(lrs.Config{}),
		core.New(rank, core.Config{RelProbCutoff: 0.01}),
	}
	var requests int64 = -1
	for _, p := range preds {
		if p != nil {
			Train(p, train)
		}
		res := Run(test, Options{Predictor: p, Sizes: sizeTable, Grades: rank})
		name := "none"
		if p != nil {
			name = p.Name()
		}
		if requests == -1 {
			requests = res.Requests
		}
		if res.Requests != requests {
			t.Errorf("%s: request count %d differs from baseline %d", name, res.Requests, requests)
		}
		if res.Hits() > res.Requests {
			t.Errorf("%s: more hits than requests", name)
		}
		if res.PrefetchHitsPopular > res.PrefetchHits {
			t.Errorf("%s: popular prefetch hits exceed prefetch hits", name)
		}
		if res.TransferredBytes < res.UsefulBytes-res.PrefetchedBytes {
			t.Errorf("%s: byte accounting inconsistent: transferred %d useful %d prefetched %d",
				name, res.TransferredBytes, res.UsefulBytes, res.PrefetchedBytes)
		}
		if res.PrefetchedBytes > res.TransferredBytes {
			t.Errorf("%s: prefetched bytes exceed transferred", name)
		}
		if res.TotalLatency < 0 {
			t.Errorf("%s: negative latency", name)
		}
		if p == nil && (res.PrefetchedDocs != 0 || res.PrefetchHits != 0) {
			t.Errorf("baseline run prefetched: %+v", res)
		}
	}
}

// TestSmallerCacheFewerHits: shrinking the browser cache can only
// reduce (or keep) the hit count on a replay without prefetching.
func TestSmallerCacheFewerHits(t *testing.T) {
	test := randomSessions(3, 150, 0)
	sizeTable := BuildSizeTable(test)
	big := Run(test, Options{Sizes: sizeTable, BrowserCacheBytes: 1 << 20})
	small := Run(test, Options{Sizes: sizeTable, BrowserCacheBytes: 2048})
	if small.Hits() > big.Hits() {
		t.Errorf("smaller cache produced more hits: %d > %d", small.Hits(), big.Hits())
	}
	if big.Hits() == 0 {
		t.Error("workload produced no cache hits at all")
	}
}

// TestCustomLatencyPathScalesLatency: doubling the link costs doubles
// the modeled total latency of a cache-less replay.
func TestCustomLatencyPathScalesLatency(t *testing.T) {
	test := randomSessions(4, 40, 0)
	sizeTable := BuildSizeTable(test)
	p1 := latency.Path{
		ClientServer: latency.Model{Connect: 100 * time.Millisecond, TransferRate: time.Microsecond},
	}
	p2 := latency.Path{
		ClientServer: latency.Model{Connect: 200 * time.Millisecond, TransferRate: 2 * time.Microsecond},
	}
	// A tiny browser cache forces (almost) every request to the server.
	r1 := Run(test, Options{Sizes: sizeTable, Path: p1, BrowserCacheBytes: 1})
	r2 := Run(test, Options{Sizes: sizeTable, Path: p2, BrowserCacheBytes: 1})
	ratio := float64(r2.TotalLatency) / float64(r1.TotalLatency)
	if ratio < 1.99 || ratio > 2.01 {
		t.Errorf("latency ratio = %v, want 2.0", ratio)
	}
}

// TestOptimizerInvokedByTrain: Train must call the model's Optimize.
func TestOptimizerInvokedByTrain(t *testing.T) {
	grades := popularity.FixedGrades{"/a": 3}
	m := core.New(grades, core.Config{DropSingletons: true})
	train := []session.Session{
		mkSession("c1", 0, sizes, "/a", "/b"),
		mkSession("c2", 100, sizes, "/x", "/y"), // singletons
		mkSession("c3", 200, sizes, "/a", "/b"),
	}
	Train(m, train)
	if m.Tree().Match([]string{"/x"}) != nil {
		t.Error("Train did not run the space optimization")
	}
	if m.Tree().Match([]string{"/a", "/b"}) == nil {
		t.Error("optimization removed repeated branch")
	}
}

// TestRunIsDeterministic: identical inputs yield identical results.
func TestRunIsDeterministic(t *testing.T) {
	train := randomSessions(5, 100, 0)
	test := randomSessions(6, 50, 500_000)
	sizeTable := BuildSizeTable(train, test)
	mk := func() runDigest {
		m := ppm.New(ppm.Config{})
		Train(m, train)
		res := Run(test, Options{Predictor: m, Sizes: sizeTable})
		return runDigest{res.Hits(), res.TransferredBytes, res.PrefetchedDocs, int64(res.TotalLatency)}
	}
	a, b := mk(), mk()
	if a != b {
		t.Errorf("nondeterministic run: %+v vs %+v", a, b)
	}
}

type runDigest struct {
	hits, transferred, prefetched, latency int64
}

// TestProxySharedAcrossClients: a document fetched by one client is a
// proxy cache hit for the next client, but not a browser hit.
func TestProxySharedAcrossClients(t *testing.T) {
	test := []session.Session{
		mkSession("alice", 0, sizes, "/a"),
		mkSession("bob", 100, sizes, "/a"),
		mkSession("carol", 200, sizes, "/a"),
	}
	res := Run(test, Options{Sizes: sizes, UseProxy: true})
	if res.ProxyCacheHits != 2 {
		t.Errorf("ProxyCacheHits = %d, want 2", res.ProxyCacheHits)
	}
	if res.BrowserHits != 0 {
		t.Errorf("BrowserHits = %d, want 0 (distinct clients)", res.BrowserHits)
	}
	// Without the proxy the same workload has no hits at all.
	direct := Run(test, Options{Sizes: sizes})
	if direct.Hits() != 0 {
		t.Errorf("direct hits = %d, want 0", direct.Hits())
	}
}

// TestGDSFPolicyRuns replays a workload with the GDSF cache policy and
// checks it behaves like a cache (hits happen, accounting holds).
func TestGDSFPolicyRuns(t *testing.T) {
	test := randomSessions(7, 150, 0)
	sizeTable := BuildSizeTable(test)
	lru := Run(test, Options{Sizes: sizeTable})
	gdsf := Run(test, Options{Sizes: sizeTable, CachePolicy: PolicyGDSF})
	if gdsf.Hits() == 0 {
		t.Error("GDSF produced no hits")
	}
	if gdsf.Requests != lru.Requests {
		t.Error("request counts differ across policies")
	}
	if PolicyLRU.String() != "lru" || PolicyGDSF.String() != "gdsf" {
		t.Error("policy names")
	}
}
