package sim

import (
	"testing"
	"time"

	"pbppm/internal/latency"
	"pbppm/internal/markov"
	"pbppm/internal/popularity"
	"pbppm/internal/ppm"
	"pbppm/internal/session"
)

var epoch = time.Date(1995, 7, 1, 0, 0, 0, 0, time.UTC)

func at(sec int) time.Time { return epoch.Add(time.Duration(sec) * time.Second) }

// mkSession builds a session with 10s click spacing and fixed sizes.
func mkSession(client string, startSec int, sizes map[string]int64, urls ...string) session.Session {
	s := session.Session{Client: client}
	for i, u := range urls {
		s.Views = append(s.Views, session.PageView{
			URL: u, Time: at(startSec + i*10), Bytes: sizes[u],
		})
	}
	return s
}

// stub is a scripted predictor: it predicts nexts[current URL].
type stub struct {
	nexts map[string][]markov.Prediction
	nodes int
}

func (s *stub) Name() string               { return "stub" }
func (s *stub) TrainSequence(seq []string) {}
func (s *stub) NodeCount() int             { return s.nodes }
func (s *stub) Predict(ctx []string) []markov.Prediction {
	if len(ctx) == 0 {
		return nil
	}
	return s.nexts[ctx[len(ctx)-1]]
}

var sizes = map[string]int64{"/a": 1000, "/b": 2000, "/c": 3000, "/big": 50_000}

func TestBaselineCaching(t *testing.T) {
	test := []session.Session{
		mkSession("c1", 0, sizes, "/a", "/b", "/a"),
	}
	res := Run(test, Options{Sizes: sizes})
	if res.Model != "none" {
		t.Errorf("Model = %q", res.Model)
	}
	if res.Requests != 3 {
		t.Errorf("Requests = %d", res.Requests)
	}
	// /a misses, /b misses, /a hits browser cache.
	if res.CacheHits != 1 || res.PrefetchHits != 0 {
		t.Errorf("hits = %+v", res)
	}
	if res.TransferredBytes != 3000 || res.UsefulBytes != 3000 {
		t.Errorf("bytes = transferred %d useful %d", res.TransferredBytes, res.UsefulBytes)
	}
	if res.TrafficIncrease() != 0 {
		t.Errorf("baseline traffic increase = %v", res.TrafficIncrease())
	}
}

func TestPrefetchHitFlow(t *testing.T) {
	pred := &stub{nexts: map[string][]markov.Prediction{
		"/a": {{URL: "/b", Probability: 0.9, Order: 1}},
	}, nodes: 7}
	test := []session.Session{mkSession("c1", 0, sizes, "/a", "/b")}
	res := Run(test, Options{Predictor: pred, Sizes: sizes})

	if res.PrefetchHits != 1 || res.CacheHits != 0 {
		t.Fatalf("hits = %+v", res)
	}
	if res.HitRatio() != 0.5 {
		t.Errorf("HitRatio = %v", res.HitRatio())
	}
	// Transferred: /a miss (1000) + /b prefetch (2000); both useful.
	if res.TransferredBytes != 3000 || res.UsefulBytes != 3000 {
		t.Errorf("bytes = %+v", res)
	}
	if res.TrafficIncrease() != 0 {
		t.Errorf("traffic increase = %v", res.TrafficIncrease())
	}
	if res.Nodes != 7 {
		t.Errorf("Nodes = %d", res.Nodes)
	}

	// Latency: only /a pays a fetch; /b is a local prefetched copy.
	baseline := Run(test, Options{Sizes: sizes})
	if red := res.LatencyReductionVs(baseline); red <= 0.3 {
		t.Errorf("latency reduction = %v, want > 0.3", red)
	}
}

func TestWastedPrefetch(t *testing.T) {
	pred := &stub{nexts: map[string][]markov.Prediction{
		"/a": {{URL: "/c", Probability: 0.9, Order: 1}},
	}}
	test := []session.Session{mkSession("c1", 0, sizes, "/a", "/b")}
	res := Run(test, Options{Predictor: pred, Sizes: sizes})
	if res.PrefetchHits != 0 {
		t.Errorf("PrefetchHits = %d", res.PrefetchHits)
	}
	// /c (3000) transferred but never used; useful = /a + /b = 3000.
	if res.TransferredBytes != 6000 || res.UsefulBytes != 3000 {
		t.Errorf("bytes = transferred %d useful %d", res.TransferredBytes, res.UsefulBytes)
	}
	if got := res.TrafficIncrease(); got != 1.0 {
		t.Errorf("traffic increase = %v, want 1.0", got)
	}
}

func TestSizeThresholdBlocksLargePrefetch(t *testing.T) {
	pred := &stub{nexts: map[string][]markov.Prediction{
		"/a": {{URL: "/big", Probability: 0.9, Order: 1}},
	}}
	test := []session.Session{mkSession("c1", 0, sizes, "/a", "/big")}
	res := Run(test, Options{Predictor: pred, Sizes: sizes, MaxPrefetchBytes: 10 * 1024})
	if res.PrefetchedDocs != 0 {
		t.Errorf("oversize document prefetched")
	}
	// Raising the threshold allows it.
	res = Run(test, Options{Predictor: pred, Sizes: sizes, MaxPrefetchBytes: 100 * 1024})
	if res.PrefetchedDocs != 1 || res.PrefetchHits != 1 {
		t.Errorf("prefetch with big threshold = %+v", res)
	}
}

func TestUnknownSizeNotPrefetched(t *testing.T) {
	pred := &stub{nexts: map[string][]markov.Prediction{
		"/a": {{URL: "/nowhere", Probability: 0.9, Order: 1}},
	}}
	test := []session.Session{mkSession("c1", 0, sizes, "/a")}
	res := Run(test, Options{Predictor: pred, Sizes: sizes})
	if res.PrefetchedDocs != 0 {
		t.Error("prefetched a document with unknown size")
	}
}

func TestAlreadyCachedNotRePrefetched(t *testing.T) {
	pred := &stub{nexts: map[string][]markov.Prediction{
		"/a": {{URL: "/b", Probability: 0.9, Order: 1}},
	}}
	test := []session.Session{mkSession("c1", 0, sizes, "/a", "/b", "/a", "/b")}
	res := Run(test, Options{Predictor: pred, Sizes: sizes})
	// /b prefetched once only; the second visit to /a finds /b cached.
	if res.PrefetchedDocs != 1 {
		t.Errorf("PrefetchedDocs = %d, want 1", res.PrefetchedDocs)
	}
	// Hits: /b (prefetch), /a (cache), /b (cache after MarkDemand).
	if res.PrefetchHits != 1 || res.CacheHits != 2 {
		t.Errorf("hits = prefetch %d cache %d", res.PrefetchHits, res.CacheHits)
	}
}

func TestPopularShareMetric(t *testing.T) {
	pred := &stub{nexts: map[string][]markov.Prediction{
		"/a": {{URL: "/b", Probability: 0.9, Order: 1}},
		"/b": {{URL: "/c", Probability: 0.9, Order: 1}},
	}}
	grades := popularity.FixedGrades{"/b": 3, "/c": 0}
	test := []session.Session{mkSession("c1", 0, sizes, "/a", "/b", "/c")}
	// PredictOnHitToo lets the /b prefetch hit still trigger the /c
	// push, exercising both grade branches of the metric in one run.
	res := Run(test, Options{Predictor: pred, Sizes: sizes, Grades: grades, PredictOnHitToo: true})
	if res.PrefetchHits != 2 || res.PrefetchHitsPopular != 1 {
		t.Fatalf("prefetch hits = %d popular %d", res.PrefetchHits, res.PrefetchHitsPopular)
	}
	if got := res.PopularShareOfPrefetchHits(); got != 0.5 {
		t.Errorf("popular share = %v", got)
	}
}

func TestProxyMode(t *testing.T) {
	pred := &stub{nexts: map[string][]markov.Prediction{
		"/a": {{URL: "/b", Probability: 0.9, Order: 1}},
	}}
	// Two clients behind the proxy: c1 triggers the prefetch of /b into
	// the proxy; c2 later demands /b and hits the proxy's prefetched copy.
	test := []session.Session{
		mkSession("c1", 0, sizes, "/a"),
		mkSession("c2", 100, sizes, "/b"),
		mkSession("c2", 200, sizes, "/b"), // now in c2's browser cache
	}
	res := Run(test, Options{Predictor: pred, Sizes: sizes, UseProxy: true})
	if res.ProxyPrefetchHits != 1 {
		t.Errorf("ProxyPrefetchHits = %d, want 1", res.ProxyPrefetchHits)
	}
	if res.BrowserHits != 1 {
		t.Errorf("BrowserHits = %d, want 1 (second /b visit)", res.BrowserHits)
	}
	if res.HitRatio() < 0.66 || res.HitRatio() > 0.67 {
		t.Errorf("HitRatio = %v, want 2/3", res.HitRatio())
	}
}

func TestProxyLatencyCheaperThanDirect(t *testing.T) {
	test := []session.Session{
		mkSession("c1", 0, sizes, "/a"),
		mkSession("c2", 100, sizes, "/a"), // proxy cache hit for c2
	}
	withProxy := Run(test, Options{Sizes: sizes, UseProxy: true})
	direct := Run(test, Options{Sizes: sizes})
	if withProxy.TotalLatency >= direct.TotalLatency {
		t.Errorf("proxy latency %v not below direct %v",
			withProxy.TotalLatency, direct.TotalLatency)
	}
	if withProxy.ProxyCacheHits != 1 {
		t.Errorf("ProxyCacheHits = %d", withProxy.ProxyCacheHits)
	}
}

func TestTrainHelperWithRealModel(t *testing.T) {
	m := ppm.New(ppm.Config{})
	train := []session.Session{
		mkSession("c1", 0, sizes, "/a", "/b"),
		mkSession("c2", 100, sizes, "/a", "/b"),
	}
	nodes := Train(m, train)
	if nodes != m.NodeCount() || nodes == 0 {
		t.Errorf("Train returned %d nodes, model has %d", nodes, m.NodeCount())
	}
	test := []session.Session{mkSession("c3", 1000, sizes, "/a", "/b")}
	res := Run(test, Options{Predictor: m, Sizes: sizes})
	if res.PrefetchHits != 1 {
		t.Errorf("end-to-end prefetch hits = %d, want 1", res.PrefetchHits)
	}
}

func TestOnlineTraining(t *testing.T) {
	m := ppm.New(ppm.Config{})
	// No offline training at all; online mode learns from the first
	// session and prefetches during the second.
	test := []session.Session{
		mkSession("c1", 0, sizes, "/a", "/b"),
		mkSession("c1", 5000, sizes, "/a", "/b"),
		mkSession("c2", 10000, sizes, "/a", "/b"),
	}
	res := Run(test, Options{Predictor: m, Sizes: sizes, OnlineTraining: true})
	if res.PrefetchHits == 0 {
		t.Error("online training produced no prefetch hits")
	}
	off := ppm.New(ppm.Config{})
	resOff := Run(test, Options{Predictor: off, Sizes: sizes})
	if resOff.PrefetchHits != 0 {
		t.Errorf("untrained offline model produced hits: %+v", resOff)
	}
}

func TestURLSequencesAndSizeTable(t *testing.T) {
	s := mkSession("c", 0, sizes, "/a", "/b")
	s.Views[0].Embedded = []session.Embedded{{URL: "/i.gif", Bytes: 500}}
	seqs := URLSequences([]session.Session{s})
	if len(seqs) != 1 || len(seqs[0]) != 2 || seqs[0][0] != "/a" {
		t.Errorf("URLSequences = %v", seqs)
	}
	table := BuildSizeTable([]session.Session{s})
	if table["/a"] != 1500 {
		t.Errorf("size(/a) = %d, want 1500 (page+embedded)", table["/a"])
	}
	if table["/b"] != 2000 {
		t.Errorf("size(/b) = %d", table["/b"])
	}
}

func TestCompare(t *testing.T) {
	train := []session.Session{
		mkSession("c1", 0, sizes, "/a", "/b"),
		mkSession("c2", 100, sizes, "/a", "/b"),
	}
	test := []session.Session{mkSession("c3", 10000, sizes, "/a", "/b")}
	results := Compare(train, test, []NamedRun{
		{Options: Options{Predictor: ppm.New(ppm.Config{})}},
		{Name: "PPM-custom", Options: Options{Predictor: ppm.New(ppm.Config{Height: 3})}},
	})
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3 (baseline + 2)", len(results))
	}
	if results[0].Model != "none" {
		t.Errorf("first result = %q, want baseline", results[0].Model)
	}
	if results[1].Model != "PPM" || results[2].Model != "PPM-custom" {
		t.Errorf("models = %q, %q", results[1].Model, results[2].Model)
	}
	if results[1].HitRatio() <= results[0].HitRatio() {
		t.Errorf("prefetching did not beat baseline: %v vs %v",
			results[1].HitRatio(), results[0].HitRatio())
	}
}

func TestFitPathFromTrace(t *testing.T) {
	table := map[string]int64{}
	for i := 0; i < 100; i++ {
		table[urlN(i)] = int64(500 + i*997)
	}
	p, err := FitPathFromTrace(table, 1)
	if err != nil {
		t.Fatal(err)
	}
	truth := latency.DefaultPath().ClientServer
	if p.ClientServer.Connect < truth.Connect/2 || p.ClientServer.Connect > truth.Connect*2 {
		t.Errorf("fitted connect %v far from truth %v", p.ClientServer.Connect, truth.Connect)
	}
	if p.ProxyHit(1000) >= p.DirectFetch(1000) {
		t.Error("fitted proxy hit not cheaper than direct fetch")
	}
	if _, err := FitPathFromTrace(map[string]int64{"/one": 5}, 1); err == nil {
		t.Error("FitPathFromTrace with one sample succeeded")
	}
}

func urlN(i int) string {
	return "/u" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func TestSessionsInterleaveByTime(t *testing.T) {
	// c2's request at t=5 lands between c1's clicks; the prefetch
	// triggered by c1 at t=0 must already be in c1's cache regardless.
	pred := &stub{nexts: map[string][]markov.Prediction{
		"/a": {{URL: "/b", Probability: 0.9, Order: 1}},
	}}
	s1 := mkSession("c1", 0, sizes, "/a", "/b")
	s2 := mkSession("c2", 5, sizes, "/c")
	res := Run([]session.Session{s1, s2}, Options{Predictor: pred, Sizes: sizes})
	if res.PrefetchHits != 1 {
		t.Errorf("PrefetchHits = %d", res.PrefetchHits)
	}
	if res.Requests != 3 {
		t.Errorf("Requests = %d", res.Requests)
	}
}
