// Package topn implements the Top-10 server-initiated prefetching
// baseline the paper discusses in its related work (§6): Markatos &
// Chronaki's approach, where a Web server regularly pushes its most
// popular documents regardless of the requesting client's context.
//
// It implements the same Predictor interface as the PPM models, which
// lets the simulator and the experiment harness compare context-free
// popularity pushing against context-aware Markov prediction — the
// contrast motivating popularity-BASED (not popularity-ONLY)
// prefetching.
package topn

import (
	"pbppm/internal/markov"
	"pbppm/internal/popularity"
)

// Config parameterizes the Top-N model.
type Config struct {
	// N is how many of the most popular documents are candidates;
	// zero selects the eponymous 10.
	N int
	// MinRelative drops candidates whose relative popularity is below
	// this floor (avoids pushing the long tail on tiny servers).
	MinRelative float64
}

func (c Config) n() int {
	if c.N <= 0 {
		return 10
	}
	return c.N
}

// Model is a Top-N popularity pusher.
type Model struct {
	cfg  Config
	rank *popularity.Ranking
}

var _ markov.Predictor = (*Model)(nil)
var _ markov.BufferedPredictor = (*Model)(nil)

// New returns an empty Top-N model.
func New(cfg Config) *Model {
	return &Model{cfg: cfg, rank: popularity.NewRanking()}
}

// Name identifies the model.
func (m *Model) Name() string { return "Top-10" }

// TrainSequence counts document accesses; sequence structure is
// ignored — this baseline has no notion of context.
func (m *Model) TrainSequence(seq []string) {
	for _, u := range seq {
		m.rank.Observe(u, 1)
	}
}

// Predict returns the top-N popular documents with their relative
// popularity as the (context-free) probability estimate. The current
// document itself is excluded: pushing what was just served is free
// but useless. Predict only reads the ranking, so once training has
// ceased it is safe for unsynchronized concurrent use.
func (m *Model) Predict(context []string) []markov.Prediction {
	return m.PredictInto(context, nil)
}

// PredictInto is Predict writing into buf per the
// markov.BufferedPredictor buffer-ownership contract (the ranking
// lookup itself still allocates its top-N scratch).
func (m *Model) PredictInto(context []string, buf []markov.Prediction) []markov.Prediction {
	buf = buf[:0]
	cur := ""
	if len(context) > 0 {
		cur = context[len(context)-1]
	}
	for _, u := range m.rank.Top(m.cfg.n() + 1) {
		if u == cur {
			continue
		}
		rp := m.rank.Relative(u)
		if rp < m.cfg.MinRelative {
			continue
		}
		buf = append(buf, markov.Prediction{URL: u, Probability: rp, Order: 0})
		if len(buf) == m.cfg.n() {
			break
		}
	}
	return buf
}

// NodeCount reports the model's storage requirement: one counter per
// distinct document, the cheapest of all the models.
func (m *Model) NodeCount() int { return m.rank.Len() }

// Ranking exposes the underlying popularity state.
func (m *Model) Ranking() *popularity.Ranking { return m.rank }
