package topn

import (
	"testing"

	"pbppm/internal/markov"
)

func train(m *Model) {
	// /hot 30x, /warm 20x, /mild 10x, tail 1x each.
	for i := 0; i < 30; i++ {
		m.TrainSequence([]string{"/hot"})
	}
	for i := 0; i < 20; i++ {
		m.TrainSequence([]string{"/warm"})
	}
	for i := 0; i < 10; i++ {
		m.TrainSequence([]string{"/mild"})
	}
	m.TrainSequence([]string{"/tail1", "/tail2"})
}

func TestName(t *testing.T) {
	if got := New(Config{}).Name(); got != "Top-10" {
		t.Errorf("Name = %q", got)
	}
}

func TestPredictReturnsTopN(t *testing.T) {
	m := New(Config{N: 2})
	train(m)
	ps := m.Predict([]string{"/somewhere"})
	if len(ps) != 2 || ps[0].URL != "/hot" || ps[1].URL != "/warm" {
		t.Fatalf("Predict = %+v", ps)
	}
	if ps[0].Probability != 1.0 {
		t.Errorf("P(/hot) = %v, want RP 1.0", ps[0].Probability)
	}
	if ps[1].Probability < 0.66 || ps[1].Probability > 0.67 {
		t.Errorf("P(/warm) = %v, want RP 2/3", ps[1].Probability)
	}
}

func TestPredictExcludesCurrentDocument(t *testing.T) {
	m := New(Config{N: 2})
	train(m)
	ps := m.Predict([]string{"/hot"})
	if len(ps) != 2 {
		t.Fatalf("Predict = %+v", ps)
	}
	for _, p := range ps {
		if p.URL == "/hot" {
			t.Error("current document predicted")
		}
	}
	if ps[0].URL != "/warm" || ps[1].URL != "/mild" {
		t.Errorf("Predict = %+v", ps)
	}
}

func TestMinRelativeFloor(t *testing.T) {
	m := New(Config{N: 10, MinRelative: 0.3})
	train(m)
	ps := m.Predict(nil)
	// Only /hot (1.0), /warm (0.67), /mild (0.33) clear the floor.
	if len(ps) != 3 {
		t.Fatalf("Predict = %+v, want 3 above the floor", ps)
	}
}

func TestDefaultN(t *testing.T) {
	m := New(Config{})
	train(m)
	if got := len(m.Predict(nil)); got != 5 {
		// Only 5 distinct URLs exist; all are candidates.
		t.Errorf("predictions = %d, want 5", got)
	}
}

func TestNodeCount(t *testing.T) {
	m := New(Config{})
	train(m)
	if got := m.NodeCount(); got != 5 {
		t.Errorf("NodeCount = %d, want 5 distinct documents", got)
	}
}

func TestEmptyModel(t *testing.T) {
	m := New(Config{})
	if got := m.Predict([]string{"/x"}); len(got) != 0 {
		t.Errorf("empty model predicted %+v", got)
	}
	if m.NodeCount() != 0 {
		t.Error("empty model has nodes")
	}
}

func TestPredictorInterface(t *testing.T) {
	var p markov.Predictor = New(Config{})
	p.TrainSequence([]string{"/a", "/b"})
	if p.Name() != "Top-10" || p.NodeCount() != 2 {
		t.Error("interface conformance broken")
	}
}
