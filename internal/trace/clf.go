package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// clfTimeLayout is the timestamp layout used by the Apache Common Log
// Format, e.g. "01/Jul/1995:00:00:01 -0400".
const clfTimeLayout = "02/Jan/2006:15:04:05 -0700"

// MarshalCLF renders the record as one Common Log Format line without a
// trailing newline. The identity and user fields are emitted as "-",
// matching the public NASA and UCB-CS traces.
func MarshalCLF(r Record) string {
	size := "-"
	if r.Bytes > 0 || r.Status == 200 {
		size = strconv.FormatInt(r.Bytes, 10)
	}
	return fmt.Sprintf("%s - - [%s] %q %d %s",
		r.Client, r.Time.Format(clfTimeLayout),
		r.Method+" "+r.URL+" HTTP/1.0", r.Status, size)
}

// ParseCLF parses one Common Log Format line. It tolerates the quirks of
// the 1995-era public traces: "-" sizes, request fields without an HTTP
// version, and stray whitespace.
func ParseCLF(line string) (Record, error) {
	var r Record
	rest := strings.TrimSpace(line)
	if rest == "" {
		return r, fmt.Errorf("trace: empty log line")
	}

	// host ident user [time] "request" status bytes
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return r, fmt.Errorf("trace: malformed log line %q", line)
	}
	r.Client = rest[:sp]
	rest = rest[sp+1:]

	lb := strings.IndexByte(rest, '[')
	rb := strings.IndexByte(rest, ']')
	if lb < 0 || rb < lb {
		return r, fmt.Errorf("trace: missing timestamp in %q", line)
	}
	ts, err := time.Parse(clfTimeLayout, rest[lb+1:rb])
	if err != nil {
		return r, fmt.Errorf("trace: bad timestamp in %q: %v", line, err)
	}
	r.Time = ts
	rest = strings.TrimSpace(rest[rb+1:])

	if len(rest) == 0 || rest[0] != '"' {
		return r, fmt.Errorf("trace: missing request field in %q", line)
	}
	endq := strings.IndexByte(rest[1:], '"')
	if endq < 0 {
		return r, fmt.Errorf("trace: unterminated request field in %q", line)
	}
	req := rest[1 : 1+endq]
	rest = strings.TrimSpace(rest[endq+2:])

	parts := strings.Fields(req)
	switch len(parts) {
	case 0:
		return r, fmt.Errorf("trace: empty request field in %q", line)
	case 1:
		// Old HTTP/0.9 style: just a URL.
		r.Method, r.URL = "GET", parts[0]
	default:
		r.Method, r.URL = parts[0], parts[1]
	}

	tail := strings.Fields(rest)
	if len(tail) < 2 {
		return r, fmt.Errorf("trace: missing status/size in %q", line)
	}
	status, err := strconv.Atoi(tail[0])
	if err != nil {
		return r, fmt.Errorf("trace: bad status in %q: %v", line, err)
	}
	r.Status = status
	if tail[1] != "-" {
		n, err := strconv.ParseInt(tail[1], 10, 64)
		if err != nil {
			return r, fmt.Errorf("trace: bad size in %q: %v", line, err)
		}
		r.Bytes = n
	}
	return r, nil
}

// ReadCLF reads an entire Common Log Format stream. Unparseable lines
// are counted and skipped (real traces contain corrupt lines); the
// skipped count is returned alongside the trace. The epoch is set to
// midnight (UTC) of the first record's day.
func ReadCLF(rd io.Reader) (t *Trace, skipped int, err error) {
	t = &Trace{}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		r, perr := ParseCLF(line)
		if perr != nil {
			skipped++
			continue
		}
		t.Records = append(t.Records, r)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("trace: reading log: %w", err)
	}
	t.Sort()
	if len(t.Records) > 0 {
		first := t.Records[0].Time.UTC()
		t.Epoch = time.Date(first.Year(), first.Month(), first.Day(), 0, 0, 0, 0, time.UTC)
	}
	return t, skipped, nil
}

// WriteCLF writes the trace as Common Log Format, one record per line.
func WriteCLF(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.Records {
		if _, err := bw.WriteString(MarshalCLF(r)); err != nil {
			return fmt.Errorf("trace: writing log: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("trace: writing log: %w", err)
		}
	}
	return bw.Flush()
}
