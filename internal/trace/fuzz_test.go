package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

// FuzzParseCLF asserts the parser never panics and that any line it
// accepts re-marshals to something it accepts again with identical
// fields (parse/print stability).
func FuzzParseCLF(f *testing.F) {
	f.Add(`199.72.81.55 - - [01/Jul/1995:00:00:01 -0400] "GET /history/apollo/ HTTP/1.0" 200 6245`)
	f.Add(`h - - [01/Jul/1995:00:00:01 -0400] "GET / HTTP/1.0" 304 -`)
	f.Add(`h - - [01/Jul/1995:00:00:01 -0400] "/bare-url" 200 1`)
	f.Add("")
	f.Add(`x [ "`)
	f.Fuzz(func(t *testing.T, line string) {
		r, err := ParseCLF(line)
		if err != nil {
			return
		}
		again, err := ParseCLF(MarshalCLF(r))
		if err != nil {
			t.Fatalf("re-parse of accepted record failed: %v (from %q)", err, line)
		}
		if again.Client != r.Client || again.URL != r.URL ||
			again.Status != r.Status || again.Bytes != r.Bytes ||
			!again.Time.Equal(r.Time) {
			t.Fatalf("parse/print not stable: %+v vs %+v", r, again)
		}
	})
}

// TestParseCLFNeverPanicsProperty drives the parser with random byte
// soup; any outcome but a panic is acceptable.
func TestParseCLFNeverPanicsProperty(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ParseCLF panicked on %q: %v", raw, r)
			}
		}()
		ParseCLF(string(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestReadCLFGarbageStream checks that a stream of garbage lines is
// skipped without error.
func TestReadCLFGarbageStream(t *testing.T) {
	garbage := strings.Repeat("not a log line at all\n\"[]\" - -\n", 50)
	tr, skipped, err := ReadCLF(strings.NewReader(garbage))
	if err != nil {
		t.Fatalf("ReadCLF: %v", err)
	}
	if len(tr.Records) != 0 || skipped != 100 {
		t.Errorf("records=%d skipped=%d", len(tr.Records), skipped)
	}
}
