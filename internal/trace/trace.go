// Package trace defines the HTTP access-log record model used throughout
// the simulator, together with parsing and encoding of the Apache Common
// Log Format (the format of the NASA-KSC and UCB-CS traces evaluated in
// the paper), MIME-kind classification, and day-window slicing.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Record is one HTTP request as it appears in a server access log.
type Record struct {
	// Client identifies the requesting host. Real logs carry an IP or a
	// resolved hostname; the synthetic generator carries a stable client
	// label. A single Client may be a browser or a proxy aggregating
	// many browsers (classified by internal/session).
	Client string
	// Time is the request timestamp. Log timestamps have one-second
	// resolution; generated traces preserve that granularity.
	Time time.Time
	// Method is the HTTP method, almost always "GET" in these traces.
	Method string
	// URL is the requested path, already stripped of protocol and host.
	URL string
	// Status is the HTTP response status code.
	Status int
	// Bytes is the size of the response body in bytes.
	Bytes int64
}

// Kind classifies a URL by the role it plays in a page view.
type Kind int

const (
	// KindOther covers everything that is neither an HTML document nor
	// an embeddable image: scripts, archives, directory listings, etc.
	KindOther Kind = iota
	// KindHTML marks an HTML document (.html, .htm, .shtml, or a
	// path ending in "/" which servers resolve to an index document).
	KindHTML
	// KindImage marks an embeddable image type from the list in §2.2 of
	// the paper.
	KindImage
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindHTML:
		return "html"
	case KindImage:
		return "image"
	default:
		return "other"
	}
}

// htmlExts and imageExts follow §2.2 of the paper verbatim.
var htmlExts = map[string]bool{
	".html": true, ".htm": true, ".shtml": true,
}

var imageExts = map[string]bool{
	".gif": true, ".xbm": true, ".jpg": true, ".jpeg": true,
	".gif89": true, ".tif": true, ".tiff": true, ".bmp": true,
	".ief": true, ".jpe": true, ".ras": true, ".pnm": true,
	".pgm": true, ".ppm": true, ".rgb": true, ".xpm": true,
	".xwd": true, ".pcx": true, ".pbm": true, ".pic": true,
}

// Classify reports the Kind of a URL path based on its extension.
// Query strings and fragments are ignored. A trailing slash (or an
// empty path) counts as HTML because servers serve index documents
// for directory URLs.
func Classify(url string) Kind {
	path := url
	if i := strings.IndexAny(path, "?#"); i >= 0 {
		path = path[:i]
	}
	if path == "" || strings.HasSuffix(path, "/") {
		return KindHTML
	}
	slash := strings.LastIndexByte(path, '/')
	base := path[slash+1:]
	dot := strings.LastIndexByte(base, '.')
	if dot < 0 {
		return KindOther
	}
	ext := strings.ToLower(base[dot:])
	switch {
	case htmlExts[ext]:
		return KindHTML
	case imageExts[ext]:
		return KindImage
	default:
		return KindOther
	}
}

// Kind returns the classification of the record's URL.
func (r Record) Kind() Kind { return Classify(r.URL) }

// Day returns the zero-based day index of the record relative to epoch.
// Records sharing a Day index belong to the same 24-hour window; the
// paper's experiments slice traces into such day files.
func (r Record) Day(epoch time.Time) int {
	d := r.Time.Sub(epoch)
	if d < 0 {
		// Records before the epoch land on negative day indices so the
		// caller can detect and reject them.
		return int((d - 24*time.Hour + time.Nanosecond) / (24 * time.Hour))
	}
	return int(d / (24 * time.Hour))
}

// Trace is an ordered collection of log records plus the epoch that
// anchors day numbering. Records are expected to be sorted by Time;
// Sort restores that invariant after any mutation.
type Trace struct {
	Epoch   time.Time
	Records []Record
}

// Sort orders records by time, breaking ties by client then URL so that
// ordering is deterministic.
func (t *Trace) Sort() {
	sort.SliceStable(t.Records, func(i, j int) bool {
		a, b := t.Records[i], t.Records[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		return a.URL < b.URL
	})
}

// Days returns the number of day windows spanned by the trace: one more
// than the maximum day index, or zero for an empty trace.
func (t *Trace) Days() int {
	max := -1
	for _, r := range t.Records {
		if d := r.Day(t.Epoch); d > max {
			max = d
		}
	}
	return max + 1
}

// Window returns the sub-trace containing records with day index in
// [fromDay, toDay). The records slice aliases the original storage.
func (t *Trace) Window(fromDay, toDay int) *Trace {
	lo := t.Epoch.Add(time.Duration(fromDay) * 24 * time.Hour)
	hi := t.Epoch.Add(time.Duration(toDay) * 24 * time.Hour)
	start := sort.Search(len(t.Records), func(i int) bool {
		return !t.Records[i].Time.Before(lo)
	})
	end := sort.Search(len(t.Records), func(i int) bool {
		return !t.Records[i].Time.Before(hi)
	})
	return &Trace{Epoch: t.Epoch, Records: t.Records[start:end]}
}

// Filter returns a new trace holding only records for which keep
// returns true. The epoch is preserved.
func (t *Trace) Filter(keep func(Record) bool) *Trace {
	out := &Trace{Epoch: t.Epoch}
	for _, r := range t.Records {
		if keep(r) {
			out.Records = append(out.Records, r)
		}
	}
	return out
}

// Clients returns the sorted set of distinct client identifiers.
func (t *Trace) Clients() []string {
	seen := make(map[string]bool)
	for _, r := range t.Records {
		seen[r.Client] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// URLs returns the sorted set of distinct URLs.
func (t *Trace) URLs() []string {
	seen := make(map[string]bool)
	for _, r := range t.Records {
		seen[r.URL] = true
	}
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Validate checks basic trace invariants: non-empty client and URL
// fields, non-negative sizes, records sorted by time, and no record
// before the epoch. It returns a descriptive error for the first
// violation found.
func (t *Trace) Validate() error {
	var prev time.Time
	for i, r := range t.Records {
		switch {
		case r.Client == "":
			return fmt.Errorf("trace: record %d has empty client", i)
		case r.URL == "":
			return fmt.Errorf("trace: record %d has empty URL", i)
		case r.Bytes < 0:
			return fmt.Errorf("trace: record %d has negative size %d", i, r.Bytes)
		case r.Time.Before(t.Epoch):
			return fmt.Errorf("trace: record %d at %v precedes epoch %v", i, r.Time, t.Epoch)
		case i > 0 && r.Time.Before(prev):
			return fmt.Errorf("trace: record %d at %v out of order (previous %v)", i, r.Time, prev)
		}
		prev = r.Time
	}
	return nil
}
