package trace

import (
	"strings"
	"testing"
	"time"
)

var epoch = time.Date(1995, 7, 1, 0, 0, 0, 0, time.UTC)

func rec(day int, sec int, client, url string, bytes int64) Record {
	return Record{
		Client: client,
		Time:   epoch.Add(time.Duration(day)*24*time.Hour + time.Duration(sec)*time.Second),
		Method: "GET",
		URL:    url,
		Status: 200,
		Bytes:  bytes,
	}
}

func TestClassifyHTML(t *testing.T) {
	for _, u := range []string{
		"/index.html", "/a/b/page.htm", "/x.shtml", "/dir/", "/",
		"/UPPER.HTML", "/page.html?query=1", "/page.html#frag", "",
	} {
		if got := Classify(u); got != KindHTML {
			t.Errorf("Classify(%q) = %v, want html", u, got)
		}
	}
}

func TestClassifyImage(t *testing.T) {
	for _, u := range []string{
		"/img/logo.gif", "/a.jpg", "/b.JPEG", "/c.xbm", "/d.tiff",
		"/e.bmp", "/f.pnm", "/g.xpm", "/h.pcx", "/deep/path/i.ppm",
	} {
		if got := Classify(u); got != KindImage {
			t.Errorf("Classify(%q) = %v, want image", u, got)
		}
	}
}

func TestClassifyOther(t *testing.T) {
	for _, u := range []string{
		"/cgi-bin/script.pl", "/a.txt", "/archive.zip", "/noext",
		"/a.html.bak", "/movie.mpg",
	} {
		if got := Classify(u); got != KindOther {
			t.Errorf("Classify(%q) = %v, want other", u, got)
		}
	}
}

func TestRecordDay(t *testing.T) {
	r := rec(3, 100, "c", "/", 1)
	if got := r.Day(epoch); got != 3 {
		t.Errorf("Day = %d, want 3", got)
	}
	r = rec(0, 0, "c", "/", 1)
	if got := r.Day(epoch); got != 0 {
		t.Errorf("Day = %d, want 0", got)
	}
	// Just before the epoch must land on a negative day.
	r.Time = epoch.Add(-time.Second)
	if got := r.Day(epoch); got >= 0 {
		t.Errorf("Day before epoch = %d, want negative", got)
	}
}

func TestTraceSortDeterministic(t *testing.T) {
	tr := &Trace{Epoch: epoch, Records: []Record{
		rec(0, 5, "b", "/2", 1),
		rec(0, 5, "a", "/1", 1),
		rec(0, 1, "z", "/3", 1),
		rec(0, 5, "a", "/0", 1),
	}}
	tr.Sort()
	want := []string{"/3", "/0", "/1", "/2"}
	for i, w := range want {
		if tr.Records[i].URL != w {
			t.Fatalf("after sort record %d = %q, want %q", i, tr.Records[i].URL, w)
		}
	}
}

func TestTraceDaysAndWindow(t *testing.T) {
	tr := &Trace{Epoch: epoch, Records: []Record{
		rec(0, 10, "a", "/x", 1),
		rec(1, 20, "a", "/y", 1),
		rec(2, 30, "b", "/z", 1),
		rec(4, 40, "b", "/w", 1),
	}}
	if got := tr.Days(); got != 5 {
		t.Errorf("Days = %d, want 5", got)
	}
	w := tr.Window(1, 3)
	if len(w.Records) != 2 {
		t.Fatalf("Window(1,3) has %d records, want 2", len(w.Records))
	}
	if w.Records[0].URL != "/y" || w.Records[1].URL != "/z" {
		t.Errorf("Window(1,3) = %v", w.Records)
	}
	if got := len(tr.Window(0, 0).Records); got != 0 {
		t.Errorf("empty window has %d records", got)
	}
	if got := len(tr.Window(0, 5).Records); got != 4 {
		t.Errorf("full window has %d records, want 4", got)
	}
}

func TestTraceFilterClientsURLs(t *testing.T) {
	tr := &Trace{Epoch: epoch, Records: []Record{
		rec(0, 1, "a", "/x.html", 1),
		rec(0, 2, "b", "/y.gif", 1),
		rec(0, 3, "a", "/x.html", 1),
	}}
	html := tr.Filter(func(r Record) bool { return r.Kind() == KindHTML })
	if len(html.Records) != 2 {
		t.Errorf("html filter kept %d records, want 2", len(html.Records))
	}
	if got := tr.Clients(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Clients = %v", got)
	}
	if got := tr.URLs(); len(got) != 2 || got[0] != "/x.html" || got[1] != "/y.gif" {
		t.Errorf("URLs = %v", got)
	}
}

func TestValidate(t *testing.T) {
	good := &Trace{Epoch: epoch, Records: []Record{
		rec(0, 1, "a", "/x", 1), rec(0, 2, "b", "/y", 0),
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Trace)
	}{
		{"empty client", func(tr *Trace) { tr.Records[0].Client = "" }},
		{"empty url", func(tr *Trace) { tr.Records[1].URL = "" }},
		{"negative size", func(tr *Trace) { tr.Records[0].Bytes = -1 }},
		{"out of order", func(tr *Trace) { tr.Records[1].Time = epoch.Add(time.Millisecond) }},
		{"before epoch", func(tr *Trace) { tr.Records[0].Time = epoch.Add(-time.Hour) }},
	}
	for _, c := range cases {
		tr := &Trace{Epoch: epoch, Records: []Record{
			rec(0, 1, "a", "/x", 1), rec(0, 2, "b", "/y", 0),
		}}
		c.mut(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: invalid trace accepted", c.name)
		}
	}
}

func TestParseCLFRoundTrip(t *testing.T) {
	orig := rec(2, 3601, "client42.example.com", "/shuttle/missions.html", 7280)
	line := MarshalCLF(orig)
	got, err := ParseCLF(line)
	if err != nil {
		t.Fatalf("ParseCLF(%q): %v", line, err)
	}
	if got.Client != orig.Client || !got.Time.Equal(orig.Time) ||
		got.Method != orig.Method || got.URL != orig.URL ||
		got.Status != orig.Status || got.Bytes != orig.Bytes {
		t.Errorf("round trip mismatch: got %+v want %+v", got, orig)
	}
}

func TestParseCLFRealLines(t *testing.T) {
	// Lines in the style of the public NASA-KSC trace.
	cases := []struct {
		line   string
		client string
		url    string
		status int
		bytes  int64
	}{
		{
			`199.72.81.55 - - [01/Jul/1995:00:00:01 -0400] "GET /history/apollo/ HTTP/1.0" 200 6245`,
			"199.72.81.55", "/history/apollo/", 200, 6245,
		},
		{
			`unicomp6.unicomp.net - - [01/Jul/1995:00:00:06 -0400] "GET /shuttle/countdown/ HTTP/1.0" 200 3985`,
			"unicomp6.unicomp.net", "/shuttle/countdown/", 200, 3985,
		},
		{
			`burger.letters.com - - [01/Jul/1995:00:00:12 -0400] "GET /images/NASA-logosmall.gif HTTP/1.0" 304 0`,
			"burger.letters.com", "/images/NASA-logosmall.gif", 304, 0,
		},
		{
			`host.example.org - - [01/Jul/1995:00:01:00 -0400] "GET /missing.html HTTP/1.0" 404 -`,
			"host.example.org", "/missing.html", 404, 0,
		},
	}
	for _, c := range cases {
		r, err := ParseCLF(c.line)
		if err != nil {
			t.Errorf("ParseCLF(%q): %v", c.line, err)
			continue
		}
		if r.Client != c.client || r.URL != c.url || r.Status != c.status || r.Bytes != c.bytes {
			t.Errorf("ParseCLF(%q) = %+v", c.line, r)
		}
	}
}

func TestParseCLFErrors(t *testing.T) {
	for _, line := range []string{
		"",
		"hostonly",
		`h - - [badtime] "GET / HTTP/1.0" 200 1`,
		`h - - [01/Jul/1995:00:00:01 -0400] GET / 200 1`,
		`h - - [01/Jul/1995:00:00:01 -0400] "GET / HTTP/1.0" x 1`,
		`h - - [01/Jul/1995:00:00:01 -0400] "GET / HTTP/1.0" 200 y`,
		`h - - [01/Jul/1995:00:00:01 -0400] "GET / HTTP/1.0"`,
		`h - - [01/Jul/1995:00:00:01 -0400] "unterminated 200 1`,
	} {
		if _, err := ParseCLF(line); err == nil {
			t.Errorf("ParseCLF(%q) succeeded, want error", line)
		}
	}
}

func TestReadWriteCLF(t *testing.T) {
	tr := &Trace{Epoch: epoch, Records: []Record{
		rec(0, 1, "a.example.com", "/index.html", 100),
		rec(0, 2, "b.example.com", "/img/x.gif", 2048),
		rec(1, 3, "a.example.com", "/page.html", 512),
	}}
	var sb strings.Builder
	if err := WriteCLF(&sb, tr); err != nil {
		t.Fatalf("WriteCLF: %v", err)
	}
	// Inject one corrupt line to exercise skip counting.
	text := sb.String() + "corrupt line without fields\n"
	got, skipped, err := ReadCLF(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ReadCLF: %v", err)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if len(got.Records) != 3 {
		t.Fatalf("read %d records, want 3", len(got.Records))
	}
	if !got.Epoch.Equal(epoch) {
		t.Errorf("epoch = %v, want %v", got.Epoch, epoch)
	}
	for i := range tr.Records {
		a, b := tr.Records[i], got.Records[i]
		if a.Client != b.Client || a.URL != b.URL || !a.Time.Equal(b.Time) || a.Bytes != b.Bytes {
			t.Errorf("record %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadCLFEmpty(t *testing.T) {
	tr, skipped, err := ReadCLF(strings.NewReader("\n\n"))
	if err != nil || skipped != 0 || len(tr.Records) != 0 {
		t.Errorf("ReadCLF(empty) = %v records, skipped %d, err %v", len(tr.Records), skipped, err)
	}
}
