package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Merge combines traces into one, re-sorted by time. The earliest
// epoch wins; merging an empty set yields an empty trace.
func Merge(traces ...*Trace) *Trace {
	out := &Trace{}
	for _, t := range traces {
		if t == nil || len(t.Records) == 0 {
			continue
		}
		if out.Epoch.IsZero() || t.Epoch.Before(out.Epoch) {
			out.Epoch = t.Epoch
		}
		out.Records = append(out.Records, t.Records...)
	}
	out.Sort()
	return out
}

// ByClient returns the sub-trace of one client's requests.
func (t *Trace) ByClient(client string) *Trace {
	return t.Filter(func(r Record) bool { return r.Client == client })
}

// ByStatus returns the sub-trace of records with any of the given
// status codes.
func (t *Trace) ByStatus(statuses ...int) *Trace {
	keep := make(map[int]bool, len(statuses))
	for _, s := range statuses {
		keep[s] = true
	}
	return t.Filter(func(r Record) bool { return keep[r.Status] })
}

// Anonymize returns a copy of the trace with every client identifier
// replaced by a stable pseudonym derived from an HMAC-style salted
// hash — the standard preparation before sharing a log. The same
// (salt, client) pair always maps to the same pseudonym, preserving
// session structure.
func (t *Trace) Anonymize(salt string) *Trace {
	names := make(map[string]string)
	out := &Trace{Epoch: t.Epoch, Records: make([]Record, len(t.Records))}
	for i, r := range t.Records {
		name, ok := names[r.Client]
		if !ok {
			sum := sha256.Sum256([]byte(salt + "\x00" + r.Client))
			name = "client-" + hex.EncodeToString(sum[:6])
			names[r.Client] = name
		}
		r.Client = name
		out.Records[i] = r
	}
	return out
}

// SplitByDay partitions the trace into per-day traces, one per day
// window that contains records, keyed by day index — the paper's "day
// files". Each sub-trace keeps the original epoch so day numbering
// stays global.
func (t *Trace) SplitByDay() map[int]*Trace {
	out := make(map[int]*Trace)
	for _, r := range t.Records {
		d := r.Day(t.Epoch)
		sub := out[d]
		if sub == nil {
			sub = &Trace{Epoch: t.Epoch}
			out[d] = sub
		}
		sub.Records = append(sub.Records, r)
	}
	return out
}

// Stats summarizes a trace's volume per day: requests and bytes.
type DayStats struct {
	Day      int
	Requests int
	Bytes    int64
}

// DailyStats returns per-day volumes in day order.
func (t *Trace) DailyStats() []DayStats {
	byDay := t.SplitByDay()
	maxDay := -1
	for d := range byDay {
		if d > maxDay {
			maxDay = d
		}
	}
	var out []DayStats
	for d := 0; d <= maxDay; d++ {
		sub := byDay[d]
		if sub == nil {
			out = append(out, DayStats{Day: d})
			continue
		}
		st := DayStats{Day: d, Requests: len(sub.Records)}
		for _, r := range sub.Records {
			st.Bytes += r.Bytes
		}
		out = append(out, st)
	}
	return out
}

// String renders day stats compactly.
func (s DayStats) String() string {
	return fmt.Sprintf("day %d: %d requests, %d bytes", s.Day, s.Requests, s.Bytes)
}
