package trace

import (
	"strings"
	"testing"
)

func TestMergeTraces(t *testing.T) {
	a := &Trace{Epoch: epoch, Records: []Record{
		rec(0, 10, "a", "/1", 1), rec(1, 5, "a", "/2", 1),
	}}
	b := &Trace{Epoch: epoch.Add(-24 * 3600 * 1e9), Records: []Record{
		rec(0, 3, "b", "/3", 1),
	}}
	m := Merge(a, b, nil, &Trace{})
	if len(m.Records) != 3 {
		t.Fatalf("merged %d records", len(m.Records))
	}
	if !m.Epoch.Equal(b.Epoch) {
		t.Errorf("epoch = %v, want the earliest", m.Epoch)
	}
	for i := 1; i < len(m.Records); i++ {
		if m.Records[i].Time.Before(m.Records[i-1].Time) {
			t.Error("merged trace unsorted")
		}
	}
	if got := Merge(); len(got.Records) != 0 {
		t.Error("empty merge not empty")
	}
}

func TestByClientAndStatus(t *testing.T) {
	r404 := rec(0, 3, "b", "/x", 0)
	r404.Status = 404
	tr := &Trace{Epoch: epoch, Records: []Record{
		rec(0, 1, "a", "/1", 1), rec(0, 2, "b", "/2", 1), r404,
	}}
	if got := tr.ByClient("a"); len(got.Records) != 1 || got.Records[0].URL != "/1" {
		t.Errorf("ByClient = %+v", got.Records)
	}
	if got := tr.ByStatus(404); len(got.Records) != 1 || got.Records[0].Status != 404 {
		t.Errorf("ByStatus = %+v", got.Records)
	}
	if got := tr.ByStatus(200, 404); len(got.Records) != 3 {
		t.Errorf("ByStatus(200,404) kept %d", len(got.Records))
	}
}

func TestAnonymize(t *testing.T) {
	tr := &Trace{Epoch: epoch, Records: []Record{
		rec(0, 1, "alice.example.com", "/1", 1),
		rec(0, 2, "bob.example.com", "/2", 1),
		rec(0, 3, "alice.example.com", "/3", 1),
	}}
	anon := tr.Anonymize("pepper")
	if len(anon.Records) != 3 {
		t.Fatal("records lost")
	}
	if anon.Records[0].Client == "alice.example.com" {
		t.Error("client not anonymized")
	}
	if !strings.HasPrefix(anon.Records[0].Client, "client-") {
		t.Errorf("pseudonym format: %q", anon.Records[0].Client)
	}
	// Stability: same client, same pseudonym; different clients differ.
	if anon.Records[0].Client != anon.Records[2].Client {
		t.Error("pseudonym not stable")
	}
	if anon.Records[0].Client == anon.Records[1].Client {
		t.Error("distinct clients collided")
	}
	// Original untouched; different salt changes pseudonyms.
	if tr.Records[0].Client != "alice.example.com" {
		t.Error("Anonymize mutated the source")
	}
	other := tr.Anonymize("different-salt")
	if other.Records[0].Client == anon.Records[0].Client {
		t.Error("salt ignored")
	}
}

func TestSplitByDayAndDailyStats(t *testing.T) {
	tr := &Trace{Epoch: epoch, Records: []Record{
		rec(0, 1, "a", "/1", 100),
		rec(0, 2, "a", "/2", 200),
		rec(2, 3, "b", "/3", 300), // day 1 empty
	}}
	byDay := tr.SplitByDay()
	if len(byDay) != 2 || len(byDay[0].Records) != 2 || len(byDay[2].Records) != 1 {
		t.Errorf("SplitByDay = %v", byDay)
	}
	stats := tr.DailyStats()
	if len(stats) != 3 {
		t.Fatalf("DailyStats = %+v", stats)
	}
	if stats[0].Requests != 2 || stats[0].Bytes != 300 {
		t.Errorf("day0 = %+v", stats[0])
	}
	if stats[1].Requests != 0 {
		t.Errorf("day1 = %+v", stats[1])
	}
	if stats[2].Bytes != 300 {
		t.Errorf("day2 = %+v", stats[2])
	}
	if !strings.Contains(stats[2].String(), "day 2") {
		t.Errorf("String = %q", stats[2].String())
	}
}
