// Package tracegen generates synthetic Web-server access logs that
// stand in for the paper's NASA-KSC (July 1995) and UCB-CS (July 2000)
// traces, which are not redistributable here. The generator reproduces
// the statistical structure the paper's findings rest on:
//
//   - Zipf-like URL popularity over a hierarchical site;
//   - Regularity 1: most access sessions start from popular URLs while
//     most URLs of the server are unpopular;
//   - Regularity 2: long sessions are predominantly headed by popular
//     URLs;
//   - Regularity 3: surfing paths move from popular URLs toward less
//     popular ones and exit at the least popular;
//   - embedded image objects requested within seconds of their HTML
//     page; heavy-tailed document sizes; one-second timestamps; a mix
//     of browser clients and proxy addresses aggregating many users.
//
// The UCBCS profile weakens the regularities the way the paper
// describes for that trace ("the popularity grades of the starting
// URLs are evenly distributed … some of the popular entries may not
// lead to long sessions"), which is what makes PB-PPM's traffic
// overhead higher there.
//
// All generation is driven by an explicit seed: the same profile and
// seed always produce the identical trace.
package tracegen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"pbppm/internal/trace"
)

// Page is one HTML document of the synthetic site.
type Page struct {
	URL    string
	Size   int64
	Images []Image
	// Links are indices into Site.Pages a surfer can move to.
	Links []int
	// Primary is the index of the preferred next page (-1 if none); a
	// fixed preferred continuation is what makes surfing paths repeat
	// and therefore learnable.
	Primary int
	// Hub is the page's section entry (its depth-1 ancestor, or the
	// home page). Surfers periodically return to hubs from anywhere in
	// a section — the popular-revisit behaviour PB-PPM's rule-3 links
	// exploit, which fixed-context models cannot see above the
	// prediction threshold because the predecessors vary.
	Hub int
	// Depth is the page's depth in the site hierarchy (0 = entry).
	Depth int
	// Weight is the page's intended relative popularity.
	Weight float64
}

// Image is an embedded object of a page.
type Image struct {
	URL  string
	Size int64
}

// Site is the synthetic server content.
type Site struct {
	Pages []Page
	// byWeight lists page indices sorted by descending weight; used for
	// popular-head sampling.
	byWeight []int
	// cumWeight is the cumulative weight distribution over byWeight.
	cumWeight []float64
}

// Profile holds every knob of the generator. Use NASA or UCBCS for the
// paper's two workloads, then override fields as needed.
type Profile struct {
	Name string
	Seed int64

	// Days is the number of day windows to generate.
	Days int
	// SessionsPerDay is the mean session count per day (Poisson-ish).
	SessionsPerDay int

	// Pages is the number of HTML documents on the site.
	Pages int
	// Branching is the fan-out of the site hierarchy.
	Branching int
	// MaxImagesPerPage caps embedded images per page.
	MaxImagesPerPage int

	// ZipfS is the Zipf skew of intended page popularity (larger =
	// more skewed).
	ZipfS float64
	// ShuffleRanks decorrelates popularity from hierarchy depth and is
	// the main lever for the UCB-CS irregularity.
	ShuffleRanks bool

	// PopularHeadBias is the probability a session starts from the
	// popular entry set rather than from an arbitrary page.
	PopularHeadBias float64
	// EntryCount is the size of the popular entry set.
	EntryCount int

	// PrimaryProb is the probability a click follows the page's
	// preferred link; the remainder spreads over the other links.
	PrimaryProb float64
	// JumpPopularProb is the probability of an off-structure jump to a
	// popular page mid-session (produces the grade ascents the PB-PPM
	// link rule exploits). HubJumpShare of those jumps return to the
	// current page's section hub; the rest scatter over the entry set.
	JumpPopularProb float64
	// HubJumpShare is the fraction of popular jumps aimed at the
	// current section's hub.
	HubJumpShare float64

	// ContinueBase is the base probability a session continues after a
	// click; ContinueHeadBoost adds per intended grade of the session
	// head (Regularity 2). The effective value is clamped below 1.
	ContinueBase      float64
	ContinueHeadBoost float64
	// MaxSessionLen hard-caps session length.
	MaxSessionLen int

	// MeanThinkSeconds is the mean inter-click think time.
	MeanThinkSeconds float64

	// Browsers and Proxies size the client population; ProxyShare is
	// the fraction of sessions issued from proxy addresses.
	Browsers   int
	Proxies    int
	ProxyShare float64

	// HTMLSizeMedian/HTMLSizeSigma parameterize the lognormal HTML size
	// distribution; ImageSizeMedian/ImageSizeSigma likewise for images.
	HTMLSizeMedian  float64
	HTMLSizeSigma   float64
	ImageSizeMedian float64
	ImageSizeSigma  float64

	// Crawlers adds robot clients that sweep the site in index order
	// once per day — the systematic deep paths that real 1995-era logs
	// contain. They bloat the unbounded standard PPM tree and mislead
	// its longest matches, while LRS's repeat threshold and PB-PPM's
	// popularity-capped branch heights shrug them off.
	Crawlers int
	// CrawlerPagesPerDay caps how many pages one crawler sweeps per
	// day; zero sweeps the whole site.
	CrawlerPagesPerDay int
	// CrawlerSkipProb is the chance a crawler skips a page on a given
	// day, so successive sweeps differ slightly.
	CrawlerSkipProb float64
	// CrawlerIntervalSeconds spaces crawler requests; the default 25
	// keeps a sweep inside one access session (no 30-minute gaps).
	CrawlerIntervalSeconds int

	// Diurnal shapes session start times like real server logs: a
	// single daily peak in the afternoon with a deep overnight trough.
	// False places sessions uniformly across the day.
	Diurnal bool
}

// NASA returns the profile standing in for the NASA-KSC July-1995
// trace: strong regularities, deep popularity skew, 8 day windows
// (enough for the paper's 1–7-day training sweeps plus a test day).
func NASA() Profile {
	return Profile{
		Name:              "nasa",
		Seed:              1995_07_01,
		Days:              8,
		SessionsPerDay:    1200,
		Pages:             600,
		Branching:         4,
		MaxImagesPerPage:  3,
		ZipfS:             1.0,
		ShuffleRanks:      false,
		PopularHeadBias:   0.80,
		EntryCount:        12,
		PrimaryProb:       0.65,
		JumpPopularProb:   0.10,
		HubJumpShare:      0.75,
		ContinueBase:      0.48,
		ContinueHeadBoost: 0.10,
		MaxSessionLen:     20,
		MeanThinkSeconds:  35,
		Browsers:          300,
		Proxies:           12,
		ProxyShare:        0.15,
		HTMLSizeMedian:    3 * 1024,
		HTMLSizeSigma:     0.7,
		ImageSizeMedian:   1200,
		ImageSizeSigma:    0.6,
		Crawlers:          2,
		CrawlerSkipProb:   0.10,
	}
}

// UCBCS returns the profile standing in for the UCB-CS July-2000
// trace: a larger, flatter site, heads spread evenly across popularity
// grades, and popular entries that do not reliably lead long sessions.
func UCBCS() Profile {
	return Profile{
		Name:               "ucbcs",
		Seed:               2000_07_01,
		Days:               6,
		SessionsPerDay:     2600,
		Pages:              1600,
		Branching:          5,
		MaxImagesPerPage:   3,
		ZipfS:              0.75,
		ShuffleRanks:       true,
		PopularHeadBias:    0.25,
		EntryCount:         60,
		PrimaryProb:        0.48,
		JumpPopularProb:    0.06,
		HubJumpShare:       0.4,
		ContinueBase:       0.55,
		ContinueHeadBoost:  0.0,
		MaxSessionLen:      20,
		MeanThinkSeconds:   30,
		Browsers:           450,
		Proxies:            10,
		ProxyShare:         0.12,
		HTMLSizeMedian:     4 * 1024,
		HTMLSizeSigma:      0.8,
		ImageSizeMedian:    1536,
		ImageSizeSigma:     0.7,
		Crawlers:           3,
		CrawlerPagesPerDay: 500,
		CrawlerSkipProb:    0.15,
	}
}

// validate rejects nonsensical profiles early with a descriptive error.
func (p Profile) validate() error {
	switch {
	case p.Days <= 0:
		return fmt.Errorf("tracegen: profile %q: Days %d must be positive", p.Name, p.Days)
	case p.Pages <= 1:
		return fmt.Errorf("tracegen: profile %q: Pages %d must exceed 1", p.Name, p.Pages)
	case p.SessionsPerDay <= 0:
		return fmt.Errorf("tracegen: profile %q: SessionsPerDay %d must be positive", p.Name, p.SessionsPerDay)
	case p.Branching <= 0:
		return fmt.Errorf("tracegen: profile %q: Branching %d must be positive", p.Name, p.Branching)
	case p.Browsers <= 0:
		return fmt.Errorf("tracegen: profile %q: Browsers %d must be positive", p.Name, p.Browsers)
	case p.ProxyShare > 0 && p.Proxies <= 0:
		return fmt.Errorf("tracegen: profile %q: ProxyShare %v needs Proxies > 0", p.Name, p.ProxyShare)
	case p.MaxSessionLen <= 0:
		return fmt.Errorf("tracegen: profile %q: MaxSessionLen %d must be positive", p.Name, p.MaxSessionLen)
	case p.ZipfS <= 0:
		return fmt.Errorf("tracegen: profile %q: ZipfS %v must be positive", p.Name, p.ZipfS)
	}
	return nil
}

// BuildSite constructs the deterministic synthetic site for a profile.
func BuildSite(p Profile) (*Site, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	s := &Site{Pages: make([]Page, p.Pages)}

	// Hierarchy: page 0 is the home page; page i's parent is
	// (i-1)/Branching, which lays pages out in BFS order so low indices
	// are shallow. A page's hub is its depth-1 ancestor (home for the
	// home page itself).
	depth := make([]int, p.Pages)
	hub := make([]int, p.Pages)
	for i := 1; i < p.Pages; i++ {
		parent := (i - 1) / p.Branching
		depth[i] = depth[parent] + 1
		if depth[i] <= 1 {
			hub[i] = i
		} else {
			hub[i] = hub[parent]
		}
	}

	// Intended popularity: Zipf over a rank permutation. Identity ranks
	// make shallow pages popular (NASA); shuffled ranks decorrelate
	// popularity from structure (UCB-CS).
	ranks := make([]int, p.Pages)
	for i := range ranks {
		ranks[i] = i
	}
	if p.ShuffleRanks {
		rng.Shuffle(len(ranks), func(i, j int) { ranks[i], ranks[j] = ranks[j], ranks[i] })
	}

	for i := range s.Pages {
		pg := &s.Pages[i]
		pg.Depth = depth[i]
		pg.Hub = hub[i]
		pg.URL = fmt.Sprintf("/d%d/page%04d.html", depth[i], i)
		pg.Size = lognormalSize(rng, p.HTMLSizeMedian, p.HTMLSizeSigma, 256)
		pg.Weight = 1 / math.Pow(float64(ranks[i]+1), p.ZipfS)

		nimg := 0
		if p.MaxImagesPerPage > 0 {
			nimg = rng.Intn(p.MaxImagesPerPage + 1)
		}
		for k := 0; k < nimg; k++ {
			pg.Images = append(pg.Images, Image{
				URL:  fmt.Sprintf("/img/page%04d_%d.gif", i, k),
				Size: lognormalSize(rng, p.ImageSizeMedian, p.ImageSizeSigma, 128),
			})
		}
	}

	// Link structure: children, parent, two random cross links, and one
	// link into the popular top set.
	for i := range s.Pages {
		pg := &s.Pages[i]
		linkSet := map[int]bool{}
		addLink := func(j int) {
			if j != i && j >= 0 && j < p.Pages && !linkSet[j] {
				linkSet[j] = true
				pg.Links = append(pg.Links, j)
			}
		}
		firstChild := i*p.Branching + 1
		for c := firstChild; c < firstChild+p.Branching; c++ {
			addLink(c)
		}
		if i > 0 {
			addLink((i - 1) / p.Branching)
		}
		addLink(rng.Intn(p.Pages))
		addLink(rng.Intn(p.Pages))
		top := p.EntryCount
		if top <= 0 || top > p.Pages {
			top = p.Pages
		}
		addLink(rng.Intn(top))

		pg.Primary = -1
		if firstChild < p.Pages {
			pg.Primary = firstChild
		} else if len(pg.Links) > 0 {
			pg.Primary = pg.Links[0]
		}
	}

	// Popularity sampling tables.
	s.byWeight = make([]int, p.Pages)
	for i := range s.byWeight {
		s.byWeight[i] = i
	}
	sort.Slice(s.byWeight, func(a, b int) bool {
		wa, wb := s.Pages[s.byWeight[a]].Weight, s.Pages[s.byWeight[b]].Weight
		if wa != wb {
			return wa > wb
		}
		return s.byWeight[a] < s.byWeight[b]
	})
	s.cumWeight = make([]float64, p.Pages)
	sum := 0.0
	for i, idx := range s.byWeight {
		sum += s.Pages[idx].Weight
		s.cumWeight[i] = sum
	}
	return s, nil
}

// sampleByWeight draws a page index from the intended popularity
// distribution.
func (s *Site) sampleByWeight(rng *rand.Rand) int {
	total := s.cumWeight[len(s.cumWeight)-1]
	x := rng.Float64() * total
	i := sort.SearchFloat64s(s.cumWeight, x)
	if i >= len(s.byWeight) {
		i = len(s.byWeight) - 1
	}
	return s.byWeight[i]
}

// intendedGrade buckets a page's weight rank into the 0–3 grade scale
// used to modulate session length (Regularity 2). It is a rank-based
// approximation of the realized popularity grade.
func (s *Site) intendedGrade(page int) int {
	n := len(s.Pages)
	// Position of the page in the popularity order.
	pos := 0
	for i, idx := range s.byWeight {
		if idx == page {
			pos = i
			break
		}
	}
	switch {
	case pos < n/50+1:
		return 3
	case pos < n/10+1:
		return 2
	case pos < n/3+1:
		return 1
	default:
		return 0
	}
}

// Generate produces the synthetic trace for a profile.
func Generate(p Profile) (*trace.Trace, error) {
	site, err := BuildSite(p)
	if err != nil {
		return nil, err
	}
	return GenerateOn(site, p)
}

// GenerateOn produces a trace over an existing site; separating site
// construction lets callers generate multiple independent periods on
// identical content.
func GenerateOn(site *Site, p Profile) (*trace.Trace, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed + 0x9e3779b9))
	epoch := time.Date(1995, 7, 1, 0, 0, 0, 0, time.UTC)
	tr := &trace.Trace{Epoch: epoch}

	// Precompute grade positions once (intendedGrade is O(n) per call).
	grade := make([]int, len(site.Pages))
	for i, idx := range site.byWeight {
		n := len(site.Pages)
		g := 0
		switch {
		case i < n/50+1:
			g = 3
		case i < n/10+1:
			g = 2
		case i < n/3+1:
			g = 1
		}
		grade[idx] = g
	}

	for day := 0; day < p.Days; day++ {
		nSessions := poissonish(rng, float64(p.SessionsPerDay))
		for sess := 0; sess < nSessions; sess++ {
			client := pickClient(rng, p)
			start := epoch.Add(time.Duration(day)*24*time.Hour + dayOffset(rng, p))
			emitSession(rng, site, p, grade, tr, client, start)
		}
		for c := 0; c < p.Crawlers; c++ {
			emitCrawl(rng, site, p, tr, c, day, epoch)
		}
	}
	tr.Sort()
	return tr, nil
}

// emitCrawl sweeps the site in page-index order for one robot client,
// skipping a random subset of pages so successive days' sweeps differ.
// Crawlers fetch HTML only (1990s robots rarely pulled images) at a
// steady interval short enough that a sweep forms one access session.
func emitCrawl(rng *rand.Rand, site *Site, p Profile, tr *trace.Trace,
	crawler, day int, epoch time.Time) {

	limit := p.CrawlerPagesPerDay
	if limit <= 0 || limit > len(site.Pages) {
		limit = len(site.Pages)
	}
	interval := p.CrawlerIntervalSeconds
	if interval <= 0 {
		interval = 25
	}
	client := fmt.Sprintf("crawler%02d.robot.example.org", crawler)
	// Stagger crawler start times so robots do not collide.
	t := epoch.Add(time.Duration(day)*24*time.Hour +
		time.Duration(crawler)*3*time.Hour +
		time.Duration(rng.Int63n(int64(time.Hour))))
	visited := 0
	for i := 0; i < len(site.Pages) && visited < limit; i++ {
		if rng.Float64() < p.CrawlerSkipProb {
			continue
		}
		pg := &site.Pages[i]
		tr.Records = append(tr.Records, trace.Record{
			Client: client, Time: t, Method: "GET",
			URL: pg.URL, Status: 200, Bytes: pg.Size,
		})
		t = t.Add(time.Duration(interval) * time.Second)
		visited++
	}
}

// dayOffset draws a session start offset within one day. The uniform
// variant spreads sessions over hours 1-23; the diurnal variant
// samples a raised-cosine curve peaking mid-afternoon with a deep
// overnight trough, via rejection sampling.
func dayOffset(rng *rand.Rand, p Profile) time.Duration {
	if !p.Diurnal {
		return time.Hour + time.Duration(rng.Int63n(int64(22*time.Hour)))
	}
	for {
		t := time.Duration(rng.Int63n(int64(24 * time.Hour)))
		hour := t.Hours()
		// Intensity in [0.1, 1], peaking at 15:00.
		intensity := 0.55 - 0.45*math.Cos((hour-3)*2*math.Pi/24)
		if rng.Float64() < intensity {
			return t
		}
	}
}

// pickClient selects a browser or proxy address for a session.
func pickClient(rng *rand.Rand, p Profile) string {
	if p.Proxies > 0 && rng.Float64() < p.ProxyShare {
		return fmt.Sprintf("proxy%03d.example.net", rng.Intn(p.Proxies))
	}
	return fmt.Sprintf("browser%05d.example.com", rng.Intn(p.Browsers))
}

// emitSession random-walks the site and appends the session's records.
func emitSession(rng *rand.Rand, site *Site, p Profile, grade []int,
	tr *trace.Trace, client string, start time.Time) {

	// Session head (Regularity 1): biased toward the popular entry set.
	var cur int
	if rng.Float64() < p.PopularHeadBias {
		top := p.EntryCount
		if top <= 0 || top > len(site.Pages) {
			top = len(site.Pages)
		}
		cur = site.byWeight[rng.Intn(top)]
	} else {
		cur = site.sampleByWeight(rng)
	}

	headGrade := grade[cur]
	pCont := p.ContinueBase + p.ContinueHeadBoost*float64(headGrade)
	if pCont > 0.93 {
		pCont = 0.93
	}

	t := start
	for click := 0; click < p.MaxSessionLen; click++ {
		pg := &site.Pages[cur]
		tr.Records = append(tr.Records, trace.Record{
			Client: client, Time: t, Method: "GET",
			URL: pg.URL, Status: 200, Bytes: pg.Size,
		})
		// Embedded images arrive within the 10-second fold window.
		for k, img := range pg.Images {
			tr.Records = append(tr.Records, trace.Record{
				Client: client,
				Time:   t.Add(time.Duration(1+k*2) * time.Second),
				Method: "GET", URL: img.URL, Status: 200, Bytes: img.Size,
			})
		}

		if rng.Float64() >= pCont {
			break
		}

		// Choose the next page: off-structure popular jump (hub return
		// or entry-set scatter), primary link, or a uniform pick among
		// the remaining links (Regularity 3 emerges because links point
		// predominantly to deeper, less popular pages).
		switch {
		case rng.Float64() < p.JumpPopularProb:
			if rng.Float64() < p.HubJumpShare {
				cur = pg.Hub
			} else {
				top := p.EntryCount
				if top <= 0 || top > len(site.Pages) {
					top = len(site.Pages)
				}
				cur = site.byWeight[rng.Intn(top)]
			}
		case pg.Primary >= 0 && rng.Float64() < p.PrimaryProb:
			cur = pg.Primary
		case len(pg.Links) > 0:
			cur = pg.Links[rng.Intn(len(pg.Links))]
		default:
			return
		}

		think := time.Duration((rng.ExpFloat64()*p.MeanThinkSeconds + 11)) * time.Second
		if think > 25*time.Minute {
			think = 25 * time.Minute
		}
		t = t.Add(think)
	}
}

// poissonish draws a session count: exact Knuth sampling for small
// means, a clamped normal approximation for large ones.
func poissonish(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k, prod := 0, 1.0
		for prod > l {
			k++
			prod *= rng.Float64()
		}
		return k - 1
	}
	n := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
	if n < 0 {
		n = 0
	}
	return n
}

// lognormalSize draws a document size with the given median and
// log-space sigma, floored at min bytes.
func lognormalSize(rng *rand.Rand, median, sigma float64, min int64) int64 {
	if median <= 0 {
		return min
	}
	v := int64(math.Round(median * math.Exp(sigma*rng.NormFloat64())))
	if v < min {
		return min
	}
	return v
}

// NASAFullMonth returns the NASA profile stretched to the paper's full
// 31-day July-1995 span. Generation stays fast, but training the
// unbounded standard model on a month of data reaches millions of
// nodes — exactly the scalability pressure Table 1 documents.
func NASAFullMonth() Profile {
	p := NASA()
	p.Days = 31
	return p
}
