package tracegen

import (
	"testing"

	"pbppm/internal/popularity"
	"pbppm/internal/session"
	"pbppm/internal/trace"
)

// smallNASA shrinks the NASA profile so tests stay fast while keeping
// the statistical structure.
func smallNASA() Profile {
	p := NASA()
	p.Days = 3
	p.SessionsPerDay = 800
	p.Pages = 500
	p.EntryCount = 6
	p.Browsers = 500
	return p
}

func smallUCB() Profile {
	p := UCBCS()
	p.Days = 3
	p.SessionsPerDay = 800
	p.Pages = 800
	p.Browsers = 700
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallNASA())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallNASA())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
	// A different seed must give a different trace.
	p := smallNASA()
	p.Seed++
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Records) == len(c.Records)
	if same {
		diff := false
		for i := range a.Records {
			if a.Records[i] != c.Records[i] {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateValidTrace(t *testing.T) {
	tr, err := Generate(smallNASA())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	if got := tr.Days(); got != 3 && got != 4 {
		// Sessions started late in day 2 may spill into day 3.
		t.Errorf("Days = %d, want 3 or 4", got)
	}
	if len(tr.Records) < 1000 {
		t.Errorf("only %d records generated", len(tr.Records))
	}
}

func TestProfileValidation(t *testing.T) {
	mutations := []func(*Profile){
		func(p *Profile) { p.Days = 0 },
		func(p *Profile) { p.Pages = 1 },
		func(p *Profile) { p.SessionsPerDay = 0 },
		func(p *Profile) { p.Branching = 0 },
		func(p *Profile) { p.Browsers = 0 },
		func(p *Profile) { p.Proxies = 0 }, // with ProxyShare > 0
		func(p *Profile) { p.MaxSessionLen = 0 },
		func(p *Profile) { p.ZipfS = 0 },
	}
	for i, mut := range mutations {
		p := smallNASA()
		mut(&p)
		if _, err := Generate(p); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := BuildSite(p); err == nil {
			t.Errorf("mutation %d accepted by BuildSite", i)
		}
	}
}

func TestSiteStructure(t *testing.T) {
	site, err := BuildSite(smallNASA())
	if err != nil {
		t.Fatal(err)
	}
	if len(site.Pages) != smallNASA().Pages {
		t.Fatalf("pages = %d, want %d", len(site.Pages), smallNASA().Pages)
	}
	for i, pg := range site.Pages {
		if trace.Classify(pg.URL) != trace.KindHTML {
			t.Errorf("page %d URL %q not HTML", i, pg.URL)
		}
		if pg.Size <= 0 {
			t.Errorf("page %d size %d", i, pg.Size)
		}
		for _, img := range pg.Images {
			if trace.Classify(img.URL) != trace.KindImage {
				t.Errorf("image URL %q not image kind", img.URL)
			}
		}
		for _, l := range pg.Links {
			if l == i || l < 0 || l >= len(site.Pages) {
				t.Errorf("page %d has bad link %d", i, l)
			}
		}
		if pg.Primary == i {
			t.Errorf("page %d primary links to itself", i)
		}
	}
	// Home page must be the most popular under identity ranks.
	if site.byWeight[0] != 0 {
		t.Errorf("most popular page = %d, want 0", site.byWeight[0])
	}
	if g := site.intendedGrade(site.byWeight[0]); g != 3 {
		t.Errorf("top page grade = %d, want 3", g)
	}
	if g := site.intendedGrade(site.byWeight[len(site.Pages)-1]); g != 0 {
		t.Errorf("bottom page grade = %d, want 0", g)
	}
}

// realizedGrades computes actual popularity grades over HTML page views.
func realizedGrades(t *testing.T, tr *trace.Trace) (*popularity.Ranking, []session.Session) {
	t.Helper()
	sessions := session.Sessionize(tr, session.Config{})
	rk := popularity.NewRanking()
	for _, s := range sessions {
		for _, v := range s.Views {
			rk.Observe(v.URL, 1)
		}
	}
	return rk, sessions
}

func TestRegularity1PopularHeads(t *testing.T) {
	tr, err := Generate(smallNASA())
	if err != nil {
		t.Fatal(err)
	}
	rk, sessions := realizedGrades(t, tr)
	if len(sessions) < 500 {
		t.Fatalf("only %d sessions", len(sessions))
	}
	popularHeads := 0
	for _, s := range sessions {
		if rk.GradeOf(s.URLs()[0]) >= 2 {
			popularHeads++
		}
	}
	frac := float64(popularHeads) / float64(len(sessions))
	if frac < 0.6 {
		t.Errorf("popular-headed sessions = %.2f, want >= 0.6 (Regularity 1)", frac)
	}
	// ... while the majority of URLs are NOT popular.
	hist := rk.GradeHistogram()
	unpopular := hist[0] + hist[1]
	total := 0
	for _, n := range hist {
		total += n
	}
	if float64(unpopular)/float64(total) < 0.5 {
		t.Errorf("unpopular URL fraction = %d/%d, want majority", unpopular, total)
	}
}

func TestRegularity2LongSessionsPopularHeads(t *testing.T) {
	tr, err := Generate(smallNASA())
	if err != nil {
		t.Fatal(err)
	}
	rk, sessions := realizedGrades(t, tr)
	long, longPopular := 0, 0
	for _, s := range sessions {
		if s.Len() >= 6 {
			long++
			if rk.GradeOf(s.URLs()[0]) >= 2 {
				longPopular++
			}
		}
	}
	if long < 20 {
		t.Fatalf("only %d long sessions", long)
	}
	if frac := float64(longPopular) / float64(long); frac < 0.6 {
		t.Errorf("long sessions with popular heads = %.2f, want >= 0.6 (Regularity 2)", frac)
	}
}

func TestRegularity3DescendingPopularity(t *testing.T) {
	tr, err := Generate(smallNASA())
	if err != nil {
		t.Fatal(err)
	}
	rk, sessions := realizedGrades(t, tr)
	descents, ascents := 0, 0
	for _, s := range sessions {
		urls := s.URLs()
		for i := 1; i < len(urls); i++ {
			a, b := rk.GradeOf(urls[i-1]), rk.GradeOf(urls[i])
			switch {
			case b < a:
				descents++
			case b > a:
				ascents++
			}
		}
	}
	if descents <= ascents {
		t.Errorf("descents %d <= ascents %d, want descending drift (Regularity 3)", descents, ascents)
	}
}

func TestSessionLengthsMostlyShort(t *testing.T) {
	tr, err := Generate(smallNASA())
	if err != nil {
		t.Fatal(err)
	}
	_, sessions := realizedGrades(t, tr)
	st := session.Summarize(sessions)
	if st.LengthAtMost9 < 0.85 {
		t.Errorf("sessions with <= 9 clicks = %.2f, want >= 0.85 (paper: >95%%)", st.LengthAtMost9)
	}
	if st.MeanLength < 1.5 {
		t.Errorf("mean session length = %.2f, suspiciously short", st.MeanLength)
	}
}

// headConcentration returns the fraction of sessions whose head URL is
// among the top 5% most-accessed URLs of the trace.
func headConcentration(t *testing.T, tr *trace.Trace) float64 {
	t.Helper()
	rk, sessions := realizedGrades(t, tr)
	top := map[string]bool{}
	for _, u := range rk.Top(rk.Len()/20 + 1) {
		top[u] = true
	}
	inTop := 0
	for _, s := range sessions {
		if top[s.URLs()[0]] {
			inTop++
		}
	}
	return float64(inTop) / float64(len(sessions))
}

func TestUCBHeadsSpreadVersusNASA(t *testing.T) {
	// The paper: "popularity grades of the starting URLs are evenly
	// distributed in the UCB-CS trace", whereas NASA sessions start
	// overwhelmingly at popular URLs. At test scale absolute grades
	// compress, so compare head concentration instead.
	nasaTr, err := Generate(smallNASA())
	if err != nil {
		t.Fatal(err)
	}
	ucbTr, err := Generate(smallUCB())
	if err != nil {
		t.Fatal(err)
	}
	nasa := headConcentration(t, nasaTr)
	ucb := headConcentration(t, ucbTr)
	if nasa < 0.6 {
		t.Errorf("NASA head concentration = %.2f, want >= 0.6", nasa)
	}
	if ucb > nasa-0.15 {
		t.Errorf("UCB head concentration %.2f not clearly below NASA %.2f", ucb, nasa)
	}
	// Heads must not all collapse into the popular set: a visible share
	// of UCB sessions starts outside the top 5%.
	if 1-ucb < 0.2 {
		t.Errorf("UCB off-popular heads = %.2f, want >= 0.2", 1-ucb)
	}
}

func TestEmbeddedImagesFoldable(t *testing.T) {
	tr, err := Generate(smallNASA())
	if err != nil {
		t.Fatal(err)
	}
	_, sessions := realizedGrades(t, tr)
	embedded := 0
	for _, s := range sessions {
		for _, v := range s.Views {
			embedded += len(v.Embedded)
			if trace.Classify(v.URL) == trace.KindImage {
				// Standalone image views should be rare (only proxy
				// interleaving can strand them); tolerate, count below.
				continue
			}
		}
	}
	if embedded == 0 {
		t.Error("no images were folded into pages")
	}
}

func TestProxyClientsPresent(t *testing.T) {
	tr, err := Generate(smallNASA())
	if err != nil {
		t.Fatal(err)
	}
	classes := session.ClassifyClients(tr, 0)
	proxies := 0
	for c, cl := range classes {
		if cl == session.Proxy {
			proxies++
			if len(c) < 5 || c[:5] != "proxy" {
				t.Logf("note: browser address %q classified as proxy (volume heuristic)", c)
			}
		}
	}
	if proxies == 0 {
		t.Error("no clients classified as proxies")
	}
}

func TestGenerateOnSharedSite(t *testing.T) {
	p := smallNASA()
	site, err := BuildSite(p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := GenerateOn(site, p)
	if err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.Seed += 99
	b, err := GenerateOn(site, p2)
	if err != nil {
		t.Fatal(err)
	}
	// Same site: URL universes overlap heavily even with different seeds.
	urlsA := map[string]bool{}
	for _, u := range a.URLs() {
		urlsA[u] = true
	}
	common := 0
	for _, u := range b.URLs() {
		if urlsA[u] {
			common++
		}
	}
	if common < len(urlsA)/2 {
		t.Errorf("only %d common URLs across periods on one site", common)
	}
}

func TestDiurnalShape(t *testing.T) {
	p := smallNASA()
	p.Diurnal = true
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Count human records by hour of day; afternoon must clearly beat
	// the small hours.
	var byHour [24]int
	for _, r := range tr.Records {
		if len(r.Client) >= 7 && r.Client[:7] == "crawler" {
			continue
		}
		byHour[r.Time.Hour()]++
	}
	afternoon := byHour[14] + byHour[15] + byHour[16]
	night := byHour[2] + byHour[3] + byHour[4]
	if afternoon < 2*night {
		t.Errorf("afternoon %d not clearly above night %d: %v", afternoon, night, byHour)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNASAFullMonthGenerates(t *testing.T) {
	if testing.Short() {
		t.Skip("full month in -short mode")
	}
	p := NASAFullMonth()
	p.SessionsPerDay = 200 // volume down, span intact
	p.Pages = 200
	p.Browsers = 150
	p.CrawlerPagesPerDay = 60
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Days(); got < 31 {
		t.Errorf("Days = %d, want >= 31", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
