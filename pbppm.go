package pbppm

import (
	"io"

	"pbppm/internal/analysis"
	"pbppm/internal/cache"
	"pbppm/internal/core"
	"pbppm/internal/experiments"
	"pbppm/internal/latency"
	"pbppm/internal/lrs"
	"pbppm/internal/maintain"
	"pbppm/internal/markov"
	"pbppm/internal/metrics"
	"pbppm/internal/popularity"
	"pbppm/internal/ppm"
	"pbppm/internal/proxy"
	"pbppm/internal/server"
	"pbppm/internal/session"
	"pbppm/internal/sim"
	"pbppm/internal/topn"
	"pbppm/internal/trace"
	"pbppm/internal/tracegen"
)

// ----- Prediction models -----

// Predictor is the interface shared by all three prefetching models.
type Predictor = markov.Predictor

// Prediction is one prefetch candidate.
type Prediction = markov.Prediction

// UtilizationReporter is implemented by models that report the
// fraction of stored paths used by predictions (Figure 2, right).
type UtilizationReporter = markov.UtilizationReporter

// UsageRecorder is implemented by models whose prediction-time usage
// marking can be detached; publishing paths (HTTPServer.SetPredictor,
// Maintainer.Rebuild) detach it so Predict on a shared published model
// performs no writes.
type UsageRecorder = markov.UsageRecorder

// BufferedPredictor is implemented by models whose Predict can write
// into a caller-supplied buffer, making repeated prediction
// allocation-free. See the interface's buffer-ownership contract.
type BufferedPredictor = markov.BufferedPredictor

// Freezer is implemented by models that can produce an immutable
// arena-backed snapshot of themselves for allocation- and GC-free
// serving.
type Freezer = markov.Freezer

// Arena is the flat, relocatable single-buffer representation of a
// frozen prediction tree.
type Arena = markov.Arena

// PredictInto routes a prediction through p's BufferedPredictor fast
// path when available and falls back to copying Predict's result into
// buf otherwise. The returned slice follows the BufferedPredictor
// buffer-ownership contract.
func PredictInto(p Predictor, context []string, buf []Prediction) []Prediction {
	return markov.PredictInto(p, context, buf)
}

// Aliases to the concrete model types so callers can hold them
// directly and reach model-specific methods (Optimize, Patterns, ...).
type (
	// PPMModel is the standard fixed/unbounded-height PPM model (§3.2).
	PPMModel = ppm.Model
	// LRSModel is the Longest-Repeating-Subsequences model.
	LRSModel = lrs.Model
	// PopularityPPM is the paper's popularity-based PPM model.
	PopularityPPM = core.Model

	// PPMConfig configures the standard model.
	PPMConfig = ppm.Config
	// LRSConfig configures the LRS model.
	LRSConfig = lrs.Config
	// PopularityPPMConfig configures the popularity-based model.
	PopularityPPMConfig = core.Config
)

// NewStandardPPM returns an empty standard PPM model. A Height of 0
// builds the unbounded variant the paper uses as an accuracy upper
// bound; Height 3 reproduces "3-PPM".
func NewStandardPPM(cfg PPMConfig) *PPMModel { return ppm.New(cfg) }

// NewLRS returns an empty Longest-Repeating-Subsequences model.
func NewLRS(cfg LRSConfig) *LRSModel { return lrs.New(cfg) }

// NewPopularityPPM returns an empty popularity-based PPM model grading
// URLs with grades (typically a *Ranking built from training data).
func NewPopularityPPM(grades Grader, cfg PopularityPPMConfig) *PopularityPPM {
	return core.New(grades, cfg)
}

type (
	// TopNModel is the context-free Top-10 baseline from the paper's
	// related work (server-initiated popularity pushing).
	TopNModel = topn.Model
	// TopNConfig configures the Top-N baseline.
	TopNConfig = topn.Config
)

// NewTopN returns an empty Top-N popularity-pushing baseline.
func NewTopN(cfg TopNConfig) *TopNModel { return topn.New(cfg) }

// DecodePopularityPPM restores a model persisted with
// (*PopularityPPM).Encode, attaching grades for further training.
func DecodePopularityPPM(r io.Reader, grades Grader) (*PopularityPPM, error) {
	return core.DecodeModel(r, grades)
}

// DecodeStandardPPM restores a model persisted with (*PPMModel).Encode.
func DecodeStandardPPM(r io.Reader) (*PPMModel, error) { return ppm.DecodeModel(r) }

// DecodeLRS restores a model persisted with (*LRSModel).Encode.
func DecodeLRS(r io.Reader) (*LRSModel, error) { return lrs.DecodeModel(r) }

// DecodeRanking restores a ranking persisted with (*Ranking).Encode.
func DecodeRanking(r io.Reader) (*Ranking, error) { return popularity.DecodeRanking(r) }

// DefaultThreshold is the paper's 0.25 prediction probability threshold.
const DefaultThreshold = ppm.DefaultThreshold

// DefaultHeights is the paper's grade→height mapping for PB-PPM.
var DefaultHeights = core.DefaultHeights

// ----- Popularity -----

type (
	// Ranking accumulates access counts and derives relative
	// popularity and grades (§3.1).
	Ranking = popularity.Ranking
	// Grade is a popularity grade, 0 (least popular) to 3.
	Grade = popularity.Grade
	// Grader supplies grades to the popularity-based model.
	Grader = popularity.Grader
	// FixedGrades is a literal-map Grader for tests and examples.
	FixedGrades = popularity.FixedGrades
)

// MaxGrade is the highest popularity grade.
const MaxGrade = popularity.MaxGrade

// NewRanking returns an empty ranking with the paper's log10 scale.
func NewRanking() *Ranking { return popularity.NewRanking() }

// ----- Traces and sessions -----

type (
	// Record is one access-log line.
	Record = trace.Record
	// Trace is an ordered access log with day-window support.
	Trace = trace.Trace
	// Session is one client's continuous page-view run.
	Session = session.Session
	// PageView is one click (a page plus folded embedded objects).
	PageView = session.PageView
	// SessionConfig controls sessionization.
	SessionConfig = session.Config
	// ClientClass distinguishes proxies from browsers.
	ClientClass = session.ClientClass
)

// Client classes from the paper's >100-requests/day heuristic.
const (
	Browser = session.Browser
	Proxy   = session.Proxy
)

// ReadCLF parses a Common Log Format stream, skipping corrupt lines.
func ReadCLF(r io.Reader) (*Trace, int, error) { return trace.ReadCLF(r) }

// WriteCLF writes a trace in Common Log Format.
func WriteCLF(w io.Writer, t *Trace) error { return trace.WriteCLF(w, t) }

// Sessionize splits a trace into per-client access sessions with the
// paper's 30-minute idle rule and 10-second embedded-image folding.
func Sessionize(t *Trace, cfg SessionConfig) []Session {
	return session.Sessionize(t, cfg)
}

// ClassifyClients applies the paper's proxy-detection heuristic;
// threshold <= 0 selects the default of 100 requests per day.
func ClassifyClients(t *Trace, threshold int) map[string]ClientClass {
	return session.ClassifyClients(t, threshold)
}

// ----- Synthetic workload generation -----

type (
	// Profile parameterizes the synthetic trace generator.
	Profile = tracegen.Profile
	// Site is the generated synthetic server content.
	Site = tracegen.Site
)

// NASAProfile returns the workload standing in for the NASA-KSC trace.
func NASAProfile() Profile { return tracegen.NASA() }

// UCBCSProfile returns the workload standing in for the UCB-CS trace.
func UCBCSProfile() Profile { return tracegen.UCBCS() }

// GenerateTrace produces the deterministic synthetic trace for a profile.
func GenerateTrace(p Profile) (*Trace, error) { return tracegen.Generate(p) }

// ----- Simulation -----

type (
	// SimOptions configures a simulation run.
	SimOptions = sim.Options
	// NamedRun pairs sim options with a display name.
	NamedRun = sim.NamedRun
	// Result carries the §2.3 metrics of one run.
	Result = metrics.Result
	// LatencyModel is a fitted linear latency model.
	LatencyModel = latency.Model
	// LatencyPath bundles the per-hop latency models.
	LatencyPath = latency.Path
	// LatencySample is one measured (size, latency) observation.
	LatencySample = latency.Sample
)

// Prefetch size thresholds from §4.1 of the paper.
const (
	DefaultMaxPrefetchBytes = sim.DefaultMaxPrefetchBytes
	PBMaxPrefetchBytes      = sim.PBMaxPrefetchBytes
)

// Cache capacities from §2.2 of the paper.
const (
	DefaultBrowserCacheBytes = cache.DefaultBrowserCapacity
	DefaultProxyCacheBytes   = cache.DefaultProxyCapacity
)

// Train folds training sessions into a predictor and applies its space
// optimization if it has one.
func Train(p Predictor, train []Session) int { return sim.Train(p, train) }

// RunSimulation replays test sessions against the configured topology.
func RunSimulation(test []Session, opt SimOptions) Result {
	return sim.Run(test, opt)
}

// CompareModels trains each run's predictor and evaluates it plus the
// no-prefetch baseline on the test sessions.
func CompareModels(train, test []Session, runs []NamedRun) []Result {
	return sim.Compare(train, test, runs)
}

// BuildSizeTable returns the per-URL transfer sizes observed in the
// given session sets.
func BuildSizeTable(sets ...[]Session) map[string]int64 {
	return sim.BuildSizeTable(sets...)
}

// FitLatency fits latency = a + b*size by least squares (§4.2).
func FitLatency(samples []latency.Sample) (LatencyModel, error) {
	return latency.Fit(samples)
}

// ----- Experiments -----

type (
	// Workload is a prepared trace for the experiment harness.
	Workload = experiments.Workload
	// SweepConfig controls the shared day sweep.
	SweepConfig = experiments.SweepConfig
	// DayResult is one sweep row.
	DayResult = experiments.DayResult
)

// NASAWorkload and UCBWorkload prepare the two paper workloads.
func NASAWorkload() (*Workload, error) { return experiments.NASAWorkload() }

// UCBWorkload prepares the UCB-CS-like workload.
func UCBWorkload() (*Workload, error) { return experiments.UCBWorkload() }

// WorkloadFromProfile generates and prepares a custom workload.
func WorkloadFromProfile(p Profile) (*Workload, error) {
	return experiments.FromProfile(p)
}

// ----- Deployable HTTP prefetching (internal/server, internal/maintain) -----

type (
	// HTTPServer is a deployable prefetching Web server: it serves a
	// ContentStore and attaches X-Prefetch hints computed by its
	// prediction model.
	HTTPServer = server.Server
	// HTTPServerConfig parameterizes the server.
	HTTPServerConfig = server.Config
	// HTTPClient is a cooperating prefetching client with a browser
	// cache that follows the server's hints.
	HTTPClient = server.Client
	// HTTPClientConfig parameterizes the client.
	HTTPClientConfig = server.ClientConfig
	// ContentStore resolves URLs to documents.
	ContentStore = server.ContentStore
	// Document is one servable resource.
	Document = server.Document
	// MapStore is a map-backed ContentStore.
	MapStore = server.MapStore

	// Maintainer periodically rebuilds the prediction model from a
	// sliding window of observed sessions.
	Maintainer = maintain.Maintainer
	// MaintainerConfig parameterizes a Maintainer.
	MaintainerConfig = maintain.Config
	// ModelFactory builds a fresh predictor from a popularity ranking.
	ModelFactory = maintain.Factory
)

// Hint-protocol header names.
const (
	HeaderClientID      = server.HeaderClientID
	HeaderPrefetch      = server.HeaderPrefetch
	HeaderPrefetchFetch = server.HeaderPrefetchFetch
)

// NewHTTPServer returns a prefetching server over store.
func NewHTTPServer(store ContentStore, cfg HTTPServerConfig) *HTTPServer {
	return server.New(store, cfg)
}

// NewHTTPClient returns a cooperating prefetching client.
func NewHTTPClient(cfg HTTPClientConfig) (*HTTPClient, error) {
	return server.NewClient(cfg)
}

// NewMaintainer returns a model-maintenance loop.
func NewMaintainer(cfg MaintainerConfig) (*Maintainer, error) {
	return maintain.New(cfg)
}

// ----- Caches -----

type (
	// CachePolicyKind selects the replacement policy in SimOptions.
	CachePolicyKind = sim.CachePolicy
	// Cache is the replacement-policy interface both LRU and GDSF
	// implement.
	Cache = cache.Policy
	// LRUCache is the paper's replacement policy.
	LRUCache = cache.LRU
	// GDSFCache is popularity-aware GreedyDual-Size-Frequency caching.
	GDSFCache = cache.GDSF
)

// Replacement policies for SimOptions.CachePolicy.
const (
	PolicyLRU  = sim.PolicyLRU
	PolicyGDSF = sim.PolicyGDSF
)

// NewLRUCache returns an LRU cache with the given byte capacity.
func NewLRUCache(capacity int64) *LRUCache { return cache.NewLRU(capacity) }

// NewGDSFCache returns a GDSF cache with the given byte capacity.
func NewGDSFCache(capacity int64) *GDSFCache { return cache.NewGDSF(capacity) }

// ----- HTTP proxy tier (internal/proxy) -----

type (
	// HTTPProxy is a deployable prefetching proxy cache that absorbs
	// the origin server's hints (the §5 topology).
	HTTPProxy = proxy.Proxy
	// HTTPProxyConfig parameterizes the proxy.
	HTTPProxyConfig = proxy.Config
	// HTTPProxyStats is a snapshot of proxy counters.
	HTTPProxyStats = proxy.Stats
)

// NewHTTPProxy returns a prefetching proxy in front of cfg.Origin.
func NewHTTPProxy(cfg HTTPProxyConfig) (*HTTPProxy, error) { return proxy.New(cfg) }

// ----- Trace analysis (internal/analysis) -----

type (
	// RegularityReport quantifies the paper's three surfing
	// regularities over a session set.
	RegularityReport = analysis.RegularityReport
	// LengthDistribution summarizes session lengths.
	LengthDistribution = analysis.LengthDistribution
)

// MeasureRegularities computes the regularity report and the realized
// popularity ranking of a session set.
func MeasureRegularities(sessions []Session) (RegularityReport, *Ranking) {
	return analysis.MeasureRegularities(sessions)
}

// MeasureLengths computes the session-length distribution.
func MeasureLengths(sessions []Session) LengthDistribution {
	return analysis.MeasureLengths(sessions)
}

// TransitionMatrix counts grade-to-grade click transitions.
func TransitionMatrix(sessions []Session, rank *Ranking) [4][4]int64 {
	return analysis.TransitionMatrix(sessions, rank)
}

// ZipfFit estimates the Zipf exponent of a popularity distribution.
func ZipfFit(rank *Ranking) (alpha, r2 float64, err error) {
	return analysis.ZipfFit(rank)
}
