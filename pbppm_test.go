package pbppm

import (
	"bytes"
	"testing"
	"time"
)

// TestPublicAPIEndToEnd drives the whole public surface: generate a
// trace, round-trip it through CLF, sessionize, rank, train all three
// models, simulate, and compare.
func TestPublicAPIEndToEnd(t *testing.T) {
	p := NASAProfile()
	p.Days = 3
	p.SessionsPerDay = 200
	p.Pages = 120
	p.Browsers = 80
	p.Crawlers = 0

	tr, err := GenerateTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}

	// CLF round trip.
	var buf bytes.Buffer
	if err := WriteCLF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, skipped, err := ReadCLF(&buf)
	if err != nil || skipped != 0 {
		t.Fatalf("ReadCLF: %v, skipped %d", err, skipped)
	}
	if len(back.Records) != len(tr.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(back.Records), len(tr.Records))
	}

	sessions := Sessionize(tr, SessionConfig{})
	if len(sessions) == 0 {
		t.Fatal("no sessions")
	}
	classes := ClassifyClients(tr, 0)
	if len(classes) == 0 {
		t.Fatal("no clients classified")
	}

	// Split train/test by day.
	var train, test []Session
	for _, s := range sessions {
		if s.Start().Before(tr.Epoch.Add(48 * time.Hour)) {
			train = append(train, s)
		} else {
			test = append(test, s)
		}
	}
	if len(train) == 0 || len(test) == 0 {
		t.Fatalf("bad split: %d train, %d test", len(train), len(test))
	}

	rank := NewRanking()
	for _, s := range train {
		for _, u := range s.URLs() {
			rank.Observe(u, 1)
		}
	}

	pb := NewPopularityPPM(rank, PopularityPPMConfig{RelProbCutoff: 0.01})
	std := NewStandardPPM(PPMConfig{})
	lrsm := NewLRS(LRSConfig{})
	results := CompareModels(train, test, []NamedRun{
		{Options: SimOptions{Predictor: std, MaxPrefetchBytes: DefaultMaxPrefetchBytes, Grades: rank}},
		{Options: SimOptions{Predictor: lrsm, MaxPrefetchBytes: DefaultMaxPrefetchBytes, Grades: rank}},
		{Options: SimOptions{Predictor: pb, MaxPrefetchBytes: PBMaxPrefetchBytes, Grades: rank}},
	})
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	base := results[0]
	for _, r := range results[1:] {
		if r.HitRatio() <= base.HitRatio() {
			t.Errorf("%s hit %.3f not above baseline %.3f", r.Model, r.HitRatio(), base.HitRatio())
		}
	}
	if pb.NodeCount() == 0 || std.NodeCount() == 0 || lrsm.NodeCount() == 0 {
		t.Error("models empty after CompareModels")
	}
	if pb.NodeCount() >= std.NodeCount() {
		t.Errorf("PB nodes %d not below standard %d", pb.NodeCount(), std.NodeCount())
	}
}

func TestFacadeConstants(t *testing.T) {
	if DefaultThreshold != 0.25 {
		t.Errorf("DefaultThreshold = %v", DefaultThreshold)
	}
	if DefaultMaxPrefetchBytes != 10*1024 || PBMaxPrefetchBytes != 30*1024 {
		t.Error("prefetch size thresholds drifted from the paper")
	}
	if DefaultBrowserCacheBytes != 1<<20 || DefaultProxyCacheBytes != 16<<30 {
		t.Error("cache capacities drifted from the paper")
	}
	if DefaultHeights != [4]int{1, 3, 5, 7} {
		t.Errorf("DefaultHeights = %v", DefaultHeights)
	}
	if MaxGrade != 3 {
		t.Errorf("MaxGrade = %v", MaxGrade)
	}
}

func TestFacadePredictorInterface(t *testing.T) {
	grades := FixedGrades{"a": 3}
	models := []Predictor{
		NewStandardPPM(PPMConfig{Height: 3}),
		NewLRS(LRSConfig{}),
		NewPopularityPPM(grades, PopularityPPMConfig{}),
	}
	for _, m := range models {
		for i := 0; i < 3; i++ {
			m.TrainSequence([]string{"a", "b"})
		}
		ps := m.Predict([]string{"a"})
		if len(ps) == 0 || ps[0].URL != "b" {
			t.Errorf("%s Predict = %+v", m.Name(), ps)
		}
		if _, ok := m.(UtilizationReporter); !ok {
			t.Errorf("%s does not report utilization", m.Name())
		}
	}
}

func TestFacadeLatencyFit(t *testing.T) {
	truth := LatencyModel{Connect: 100 * time.Millisecond, TransferRate: 10 * time.Microsecond}
	sizes := map[string]int64{}
	for i := 0; i < 50; i++ {
		sizes[string(rune('a'+i%26))+string(rune('0'+i/26))] = int64(1000 + i*777)
	}
	var samples []LatencySample
	for _, s := range sizes {
		samples = append(samples, LatencySample{Size: s, Latency: truth.Estimate(s)})
	}
	m, err := FitLatency(samples)
	if err != nil {
		t.Fatal(err)
	}
	if m.Estimate(10_000) <= 0 {
		t.Error("fitted model estimates nothing")
	}
}

// TestFacadePersistence round-trips a trained PB model and its ranking
// through the public Encode/Decode API.
func TestFacadePersistence(t *testing.T) {
	rank := NewRanking()
	for i := 0; i < 20; i++ {
		rank.Observe("/home", 1)
	}
	rank.Observe("/rare", 1)

	m := NewPopularityPPM(rank, PopularityPPMConfig{})
	for i := 0; i < 5; i++ {
		m.TrainSequence([]string{"/home", "/rare"})
	}

	var rankBuf, modelBuf bytes.Buffer
	if err := rank.Encode(&rankBuf); err != nil {
		t.Fatal(err)
	}
	if err := m.Encode(&modelBuf); err != nil {
		t.Fatal(err)
	}

	rank2, err := DecodeRanking(&rankBuf)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodePopularityPPM(&modelBuf, rank2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NodeCount() != m.NodeCount() {
		t.Errorf("nodes = %d, want %d", m2.NodeCount(), m.NodeCount())
	}
	got := m2.Predict([]string{"/home"})
	if len(got) == 0 || got[0].URL != "/rare" {
		t.Errorf("restored model Predict = %+v", got)
	}
}

// TestFacadeTopN exercises the related-work baseline via the facade.
func TestFacadeTopN(t *testing.T) {
	m := NewTopN(TopNConfig{N: 1})
	for i := 0; i < 3; i++ {
		m.TrainSequence([]string{"/hot"})
	}
	m.TrainSequence([]string{"/cold"})
	ps := m.Predict([]string{"/cold"})
	if len(ps) != 1 || ps[0].URL != "/hot" {
		t.Errorf("TopN Predict = %+v", ps)
	}
}

// TestFacadeWorkloadAndAnalysis covers the workload and analysis
// wrappers end to end.
func TestFacadeWorkloadAndAnalysis(t *testing.T) {
	p := NASAProfile()
	p.Days = 3
	p.SessionsPerDay = 150
	p.Pages = 120
	p.Browsers = 60
	p.CrawlerPagesPerDay = 50
	w, err := WorkloadFromProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	if w.Days() < 3 || len(w.Sessions) == 0 {
		t.Fatalf("workload = %d days, %d sessions", w.Days(), len(w.Sessions))
	}

	rep, rank := MeasureRegularities(w.Sessions)
	if rep.Sessions != len(w.Sessions) {
		t.Error("report session count mismatch")
	}
	if got := MeasureLengths(w.Sessions); got.Mean <= 0 {
		t.Error("length distribution empty")
	}
	m := TransitionMatrix(w.Sessions, rank)
	var mass int64
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			mass += m[a][b]
		}
	}
	if mass == 0 {
		t.Error("empty transition matrix")
	}
	if _, _, err := ZipfFit(rank); err != nil {
		t.Errorf("ZipfFit: %v", err)
	}
}

// TestFacadeCaches covers the cache constructors and policy constants.
func TestFacadeCaches(t *testing.T) {
	var c Cache = NewLRUCache(1000)
	c.Put("/a", 100, false)
	if ok, _ := c.Get("/a"); !ok {
		t.Error("LRU facade broken")
	}
	c = NewGDSFCache(1000)
	c.Put("/b", 100, true)
	if ok, pf := c.Get("/b"); !ok || !pf {
		t.Error("GDSF facade broken")
	}
	if PolicyLRU == PolicyGDSF {
		t.Error("policy constants collide")
	}
}

// TestFacadeHTTPDecoders covers the standard/LRS decode wrappers.
func TestFacadeModelDecoders(t *testing.T) {
	std := NewStandardPPM(PPMConfig{})
	std.TrainSequence([]string{"a", "b"})
	var buf bytes.Buffer
	if err := std.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeStandardPPM(&buf)
	if err != nil || back.NodeCount() != std.NodeCount() {
		t.Errorf("DecodeStandardPPM: %v", err)
	}

	l := NewLRS(LRSConfig{})
	l.TrainSequence([]string{"a", "b"})
	buf.Reset()
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeLRS(&buf); err != nil {
		t.Errorf("DecodeLRS: %v", err)
	}
}

// TestFacadeMaintainerAndHTTP covers the deployable wrappers.
func TestFacadeMaintainerAndHTTP(t *testing.T) {
	maint, err := NewMaintainer(MaintainerConfig{
		Factory: func(rank *Ranking) Predictor {
			return NewPopularityPPM(rank, PopularityPPMConfig{})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := Session{Client: "c"}
	s.Views = append(s.Views, PageView{URL: "/a", Time: time.Now()},
		PageView{URL: "/b", Time: time.Now().Add(time.Second)})
	maint.Observe(s)
	if maint.Rebuild(time.Now().Add(time.Minute)) == nil {
		t.Fatal("rebuild returned nil")
	}

	store := MapStore{"/a": Document{URL: "/a", Body: make([]byte, 10)}}
	srv := NewHTTPServer(store, HTTPServerConfig{Predictor: maint.Predictor()})
	if srv == nil {
		t.Fatal("nil server")
	}
	if _, err := NewHTTPProxy(HTTPProxyConfig{Origin: "http://127.0.0.1:9"}); err != nil {
		t.Errorf("NewHTTPProxy: %v", err)
	}
	if _, err := NewHTTPClient(HTTPClientConfig{ID: "x", BaseURL: "http://127.0.0.1:9"}); err != nil {
		t.Errorf("NewHTTPClient: %v", err)
	}
	if HeaderPrefetch == "" || HeaderClientID == "" || HeaderPrefetchFetch == "" {
		t.Error("header constants empty")
	}
}
