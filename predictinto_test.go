// Serving-path contract tests: every model must honor the
// markov.BufferedPredictor buffer-ownership contract (no aliasing of
// model-internal storage, no retention of the caller's buffer), and
// every training path — serial, sharded, delta-merged, arena-frozen —
// must produce the same predictions in the same pinned order.
package pbppm

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pbppm/internal/markov"
)

// contractSequences is a deterministic Zipf-ish workload small enough
// for fast tests but skewed enough to produce probability ties.
func contractSequences(rng *rand.Rand, n int) [][]string {
	urls := make([]string, 24)
	for i := range urls {
		urls[i] = fmt.Sprintf("/doc/%02d", i)
	}
	seqs := make([][]string, n)
	for i := range seqs {
		s := make([]string, rng.Intn(6)+2)
		for j := range s {
			s[j] = urls[rng.Intn(rng.Intn(len(urls))+1)]
		}
		seqs[i] = s
	}
	return seqs
}

func contractContexts(rng *rand.Rand, n int) [][]string {
	ctxs := make([][]string, n)
	for i := range ctxs {
		ctx := make([]string, rng.Intn(4)+1)
		for j := range ctx {
			ctx[j] = fmt.Sprintf("/doc/%02d", rng.Intn(26)) // includes unseen URLs
		}
		ctxs[i] = ctx
	}
	return ctxs
}

// contractModels returns every model the repo ships, trained on the
// same workload, plus the frozen snapshot of each freezer.
func contractModels(t *testing.T) map[string]Predictor {
	t.Helper()
	rng := rand.New(rand.NewSource(2024))
	seqs := contractSequences(rng, 400)
	rank := NewRanking()
	for _, s := range seqs {
		for _, u := range s {
			rank.Observe(u, 1)
		}
	}
	models := map[string]Predictor{
		"3-PPM":       NewStandardPPM(PPMConfig{Height: 3}),
		"PPM-blended": NewStandardPPM(PPMConfig{BlendOrders: true}),
		"LRS":         NewLRS(LRSConfig{}),
		"PB-PPM":      NewPopularityPPM(rank, PopularityPPMConfig{RelProbCutoff: 0.01}),
		"Top-10":      NewTopN(TopNConfig{}),
	}
	for _, m := range models {
		for _, s := range seqs {
			m.TrainSequence(s)
		}
	}
	for name, m := range models {
		if fz, ok := m.(Freezer); ok {
			models[name+"/frozen"] = fz.Freeze()
		}
	}
	return models
}

// TestPredictIntoMatchesPredict pins PredictInto to Predict for every
// model, with a buffer reused across calls — the serving paths (HTTP
// server, simulator) depend on this equivalence.
func TestPredictIntoMatchesPredict(t *testing.T) {
	models := contractModels(t)
	ctxs := contractContexts(rand.New(rand.NewSource(17)), 300)
	for name, m := range models {
		var buf []Prediction
		for _, ctx := range ctxs {
			want := m.Predict(ctx)
			buf = PredictInto(m, ctx, buf)
			if len(want) == 0 && len(buf) == 0 {
				continue
			}
			if !reflect.DeepEqual([]Prediction(buf), want) {
				t.Fatalf("%s ctx %v:\n PredictInto %+v\n Predict     %+v", name, ctx, buf, want)
			}
		}
	}
}

// TestPredictIntoDoesNotAliasModelStorage is the regression test for
// the contract's no-aliasing clause: scribbling over a returned buffer
// must not change what the model predicts next. A model that handed out
// a view of its internal candidate storage would fail on the second
// call.
func TestPredictIntoDoesNotAliasModelStorage(t *testing.T) {
	models := contractModels(t)
	ctxs := contractContexts(rand.New(rand.NewSource(31)), 120)
	for name, m := range models {
		var buf []Prediction
		for _, ctx := range ctxs {
			want := m.Predict(ctx)
			buf = PredictInto(m, ctx, buf)
			for i := range buf {
				buf[i] = Prediction{URL: "/poisoned", Probability: -1, Order: -1}
			}
			got := m.Predict(ctx)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s ctx %v: scribbling on the returned buffer changed later predictions:\n before %+v\n after  %+v",
					name, ctx, want, got)
			}
		}
	}
}

// TestFrozenModelsMatchLiveModels is the model-level golden suite of
// the freeze: every freezer's arena snapshot must reproduce the live
// model's predictions bit for bit — including PB-PPM's precomputed
// popular-node links and the blended variant's confidence arithmetic.
func TestFrozenModelsMatchLiveModels(t *testing.T) {
	models := contractModels(t)
	ctxs := contractContexts(rand.New(rand.NewSource(53)), 400)
	for name, m := range models {
		frozen, ok := models[name+"/frozen"]
		if !ok {
			continue
		}
		for _, ctx := range ctxs {
			want := m.Predict(ctx)
			got := frozen.Predict(ctx)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s ctx %v:\n frozen %+v\n live   %+v", name, ctx, got, want)
			}
		}
		if got, want := frozen.NodeCount(), m.NodeCount(); got != want {
			t.Fatalf("%s: frozen NodeCount %d, live %d", name, got, want)
		}
	}
}

// TestPredictionOrderPinnedAcrossTrainingPaths is the determinism
// guarantee of the pinned tie order (probability descending, then URL
// ascending): a model trained serially, through parallel shards,
// through the clone-and-merge delta path, and then frozen into an
// arena must emit byte-identical prediction lists.
func TestPredictionOrderPinnedAcrossTrainingPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	seqs := contractSequences(rng, 600)
	ctxs := contractContexts(rand.New(rand.NewSource(78)), 400)

	builders := map[string]func() Predictor{
		"3-PPM": func() Predictor { return NewStandardPPM(PPMConfig{Height: 3}) },
		"LRS":   func() Predictor { return NewLRS(LRSConfig{}) },
		"PB-PPM": func() Predictor {
			rank := NewRanking()
			for _, s := range seqs {
				for _, u := range s {
					rank.Observe(u, 1)
				}
			}
			return NewPopularityPPM(rank, PopularityPPMConfig{RelProbCutoff: 0.01})
		},
	}
	for name, build := range builders {
		serial := build()
		for _, s := range seqs {
			serial.TrainSequence(s)
		}

		sharded := build()
		markov.TrainAllParallel(sharded, seqs)

		// Delta path: half the workload into the base, the rest through a
		// shard merged into a clone — the maintenance loop's incremental
		// publish.
		base := build()
		half := len(seqs) / 2
		for _, s := range seqs[:half] {
			base.TrainSequence(s)
		}
		inc := base.(markov.IncrementalTrainer)
		merged := inc.Clone().(markov.IncrementalTrainer)
		shard := merged.NewShard()
		for _, s := range seqs[half:] {
			shard.TrainSequence(s)
		}
		merged.MergeShard(shard)

		frozen := serial.(Freezer).Freeze()

		paths := map[string]Predictor{
			"sharded": sharded, "delta-merged": merged, "frozen": frozen,
		}
		for _, ctx := range ctxs {
			want := serial.Predict(ctx)
			for path, m := range paths {
				got := m.Predict(ctx)
				if len(want) == 0 && len(got) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/%s ctx %v:\n got  %+v\n want %+v", name, path, ctx, got, want)
				}
			}
		}
	}
}
